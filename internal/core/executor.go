package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"aptrace/internal/event"
	"aptrace/internal/explain"
	"aptrace/internal/graph"
	"aptrace/internal/maintainer"
	"aptrace/internal/memo"
	"aptrace/internal/obs"
	"aptrace/internal/refiner"
	"aptrace/internal/simclock"
	"aptrace/internal/store"
	"aptrace/internal/telemetry"
	"aptrace/internal/timeline"
)

// DefaultWindows is the default window count k; the paper's blue team used
// the empirical value eight.
const DefaultWindows = 8

// StopReason says why a run ended.
type StopReason uint8

const (
	// Completed: the priority queue drained; the dependency graph is full.
	Completed StopReason = iota
	// TimeBudgetExceeded: the BDL "time <= d" budget expired.
	TimeBudgetExceeded
	// Stopped: the analyst stopped the run (found what they needed).
	Stopped
)

// String names the stop reason.
func (r StopReason) String() string {
	switch r {
	case Completed:
		return "completed"
	case TimeBudgetExceeded:
		return "time budget exceeded"
	default:
		return "stopped by analyst"
	}
}

// Update is one responsive progress report: an edge just landed in the
// dependency graph. It is an alias of graph.Update, shared with the
// King-Chen baseline so harnesses can treat both engines uniformly.
type Update = graph.Update

// Result summarizes a finished (or stopped) run.
type Result struct {
	Graph   *graph.Graph
	Reason  StopReason
	Updates int
	Elapsed time.Duration
	Windows int // execution windows processed
}

// Options configure an Executor.
type Options struct {
	// Windows is the window count k (DefaultWindows if zero).
	Windows int
	// OnUpdate, if set, is invoked synchronously for every graph update.
	OnUpdate func(Update)
	// UniformWindows disables the geometric length sequence and cuts each
	// search range into k equal windows instead (ablation A2).
	UniformWindows bool
	// FIFOQueue disables the priority ordering and explores windows in
	// insertion order (ablation A2).
	FIFOQueue bool
	// MaxWindowRows caps how many index rows a single window query may
	// retrieve: a window whose cardinality estimate exceeds the cap is
	// re-split (ratio 2, nearest-first) before being queried, so no single
	// retrieval can block the update stream — the engineering realization
	// of the paper's "retrieve the dependents in many smaller batches".
	// Zero means DefaultMaxWindowRows; NoSplit disables re-splitting
	// entirely (ablation A2).
	MaxWindowRows int
	NoSplit       bool
	// Telemetry, if set, publishes executor metrics (queue depth,
	// windows executed, re-splits, inter-update gap histogram) and spans
	// (window.query, window.resplit) to the registry. Nil disables
	// publication at near-zero cost.
	Telemetry *telemetry.Registry
	// Explain, if set, receives a decision record for every per-edge
	// verdict and scheduling choice the executor makes, powering the
	// EXPLAIN query layer. Nil disables recording at the cost of one
	// pointer test per emission site.
	Explain *explain.Recorder
	// Timeline, if set, is this run's profiler lane: the executor emits
	// the window lifecycle (enqueue/query/resplit/abandon) and graph
	// updates into it, the store's charged query cost is attributed to it,
	// and its SLO watchdog measures the inter-update gap. Nil disables
	// profiling at the cost of one pointer test per emission site.
	Timeline *timeline.Recorder
	// Memo, if set, is a shared cross-alert result cache: window row
	// closures and computed-attribute evaluations are served from it when
	// another run over the same sealed content already computed them. A
	// hit replays the identical charged cost (rows + latency on the
	// analysis clock), so results, stats deltas, and all experiment output
	// are byte-identical with the cache on or off — only real CPU changes.
	// Nil disables caching.
	Memo *memo.Cache
	// Obs, if set, is the run's lifecycle-journal scope (bound to the
	// triage daemon's correlation ID and run ID). The executor does not
	// add emission sites of its own: window milestones reach the journal
	// through the Timeline lane's observer, memo verdicts through the
	// bound memo view — the same hooks the profiler and EXPLAIN layers
	// already use. The journal stamps wall-clock time only, never the
	// analysis clock, so enabling it cannot change any charged cost or
	// graph output. Nil (and a nil scope is valid) journals nothing.
	Obs *obs.Scope
}

// DefaultMaxWindowRows is the default per-window retrieval cap. At the
// calibrated cost model (~0.4 s per retrieved row) eight rows keep every
// single retrieval — and therefore every inter-update gap — in the
// seconds range the paper reports for APTrace.
const DefaultMaxWindowRows = 8

// Executor runs responsive backtracking analysis over a sealed store.
// One Executor handles one analysis; create a new one to restart.
type Executor struct {
	st   *store.Store
	clk  simclock.Clock
	opts Options
	// env is what charged evaluations (where filters, prioritize rules,
	// maintainer flow queries, start matching) run against: the memo view
	// when Options.Memo is set, the store itself otherwise.
	env refiner.Env
	mv  *memo.View // non-nil iff Options.Memo is set

	mu      sync.Mutex
	cond    *sync.Cond
	paused  bool
	stop    bool
	running bool  // the run loop is active
	parked  bool  // the run loop is waiting out a pause
	runGoid int64 // goroutine running the loop, 0 when not running

	plan  *refiner.Plan
	maint *maintainer.Maintainer
	g     *graph.Graph

	from, to int64 // resolved analysis range
	started  time.Time
	budget   time.Duration

	fwd     bool // forward (impact) tracking, from the plan
	pq      windowHeap
	covered map[event.ObjID]int64 // per object: latest (earliest, forward) time scheduled
	dropped map[event.ObjID]bool  // objects rejected by the where filter
	depsBuf []event.Event         // window-query buffer, reused across processWindow calls

	updates  int
	windows  int
	prepared bool
	alert    event.Event

	tel        execMetrics
	tracer     *telemetry.Tracer
	rec        *explain.Recorder
	tl         *timeline.Recorder
	runSpan    *telemetry.Span // open from Prepare to the end of the run
	lastUpdate time.Time       // timestamp of the latest distinct update
}

// execMetrics holds the executor's pre-resolved instruments; all nil (and
// therefore no-ops) when telemetry is disabled.
type execMetrics struct {
	queueDepth *telemetry.Gauge
	windows    *telemetry.Counter
	resplits   *telemetry.Counter
	updateGap  *telemetry.Histogram
}

func newExecMetrics(reg *telemetry.Registry) execMetrics {
	return execMetrics{
		queueDepth: reg.Gauge(telemetry.MetricExecQueueDepth),
		windows:    reg.Counter(telemetry.MetricExecWindows),
		resplits:   reg.Counter(telemetry.MetricExecResplits),
		updateGap:  reg.Histogram(telemetry.MetricExecUpdateGap, telemetry.GapBuckets),
	}
}

// New prepares an executor for the given plan over st. The store must be
// sealed.
func New(st *store.Store, plan *refiner.Plan, opts Options) (*Executor, error) {
	if !st.Sealed() {
		return nil, store.ErrNotSealed
	}
	if opts.Windows <= 0 {
		opts.Windows = DefaultWindows
	}
	if opts.Windows > MaxWindows {
		opts.Windows = MaxWindows
	}
	if opts.MaxWindowRows <= 0 {
		opts.MaxWindowRows = DefaultMaxWindowRows
	}
	x := &Executor{st: st, clk: st.Clock(), opts: opts, plan: plan}
	x.tel = newExecMetrics(opts.Telemetry)
	x.tracer = opts.Telemetry.Tracer()
	x.rec = opts.Explain
	x.rec.SetClock(st.Clock())
	x.env = st
	if opts.Memo != nil {
		mv, err := opts.Memo.Bind(st, plan.FilterFingerprint(), x.rec)
		if err != nil {
			return nil, err
		}
		x.mv = mv
		x.env = mv
		x.mv.SetObs(opts.Obs)
	}
	x.tl = opts.Timeline
	if x.tl != nil && opts.Obs != nil {
		// Mirror the lane's window milestones and graph updates into the
		// lifecycle journal: one emission site (the lane), two sinks.
		// Stalls are operator-relevant, so they journal at Warn; the rest
		// is Debug and subject to the journal's deterministic sampling.
		scope := opts.Obs
		x.tl.SetObserver(func(ev timeline.Event) {
			lvl := obs.Debug
			if ev.Kind == timeline.KindStall {
				lvl = obs.Warn
			}
			scope.Emit(lvl, ev.Kind.String(), ev.Detail, int64(ev.Rows), ev.Dur)
		})
	}
	if x.tl != nil {
		// Per-window cost attribution: the store reports every charged
		// query's rows/buckets/cost, which the lane folds into the next
		// window.query trace event. The store (usually a per-run view) is
		// private to this run, so the observer never crosses runs.
		st.SetCostObserver(x.tl.ObserveQueryCost)
		// On a sharded store, also fold each routed query's shard
		// breakdown (fan-out, per-shard rows) into the same trace event.
		st.SetScatterObserver(x.tl.ObserveScatter)
	}
	x.cond = sync.NewCond(&x.mu)
	return x, nil
}

// goid returns the current goroutine's ID by parsing the "goroutine N ["
// header of a stack dump. The run loop records its own ID so Pause and
// UpdatePlan can tell a reentrant call (from an OnUpdate callback on the
// run goroutine, where blocking would self-deadlock) from a concurrent one.
func goid() int64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	var id int64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}

// Graph returns the dependency graph built so far (nil before Run).
func (x *Executor) Graph() *graph.Graph {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.g
}

// Plan returns the currently active plan.
func (x *Executor) Plan() *refiner.Plan {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.plan
}

// Pause suspends the run at the next window boundary. It returns once the
// executor acknowledges the pause — the run loop has parked — or the run
// already ended, so a caller that sequences Pause before UpdatePlan can
// never race an in-flight window. Calling Pause from the run goroutine
// itself (inside an OnUpdate callback) only requests the pause: the loop
// parks when the current window finishes, and blocking there would
// self-deadlock.
func (x *Executor) Pause() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.paused = true
	if x.runGoid == goid() {
		return
	}
	// Wait until the loop parks, the run ends, or the pause is cancelled
	// (Resume/Stop from a third goroutine releases the waiter).
	for x.running && !x.parked && x.paused {
		x.cond.Wait()
	}
}

// Resume lets a paused run continue.
func (x *Executor) Resume() {
	x.mu.Lock()
	x.paused = false
	x.mu.Unlock()
	x.cond.Broadcast()
}

// Stop terminates the run at the next window boundary.
func (x *Executor) Stop() {
	x.mu.Lock()
	x.stop = true
	x.paused = false
	x.mu.Unlock()
	x.cond.Broadcast()
}

// UpdatePlan swaps in a new compiled plan while the executor is paused,
// applying the given resume action. Restart is rejected: a changed starting
// point needs a fresh Executor (the session layer handles that case).
//
// When the run loop is active, UpdatePlan requires a pause to be in effect
// and waits until the loop has actually parked before swapping, so no
// in-flight window can observe a half-applied plan. (From the run goroutine
// itself — an OnUpdate callback — the swap is immediate: the loop is, by
// construction, not mid-window elsewhere.)
func (x *Executor) UpdatePlan(plan *refiner.Plan, action refiner.ResumeAction) error {
	if action == refiner.Restart {
		return errors.New("core: restart requires a new executor")
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.running && x.runGoid != goid() {
		if !x.paused {
			return errors.New("core: UpdatePlan on a running executor requires Pause first")
		}
		for x.running && !x.parked && x.paused {
			x.cond.Wait()
		}
		if x.running && !x.parked {
			return errors.New("core: pause was cancelled before the plan swap; call Pause again")
		}
	}
	x.plan = plan
	min, max, _ := x.st.TimeRange()
	x.from, x.to = plan.Range(min, max)
	x.budget = plan.TimeBudget
	if x.mv != nil {
		// The filter fingerprint keys the cache; rebind under the new
		// plan's so closures cached under the old filter cannot serve it.
		mv, err := x.opts.Memo.Bind(x.st, plan.FilterFingerprint(), x.rec)
		if err != nil {
			return err
		}
		x.mv = mv
		x.env = mv
		x.mv.SetObs(x.opts.Obs)
	}
	x.maint = maintainer.New(plan, x.env, x.from, x.to)
	// New filters may admit objects dropped under the old plan.
	x.dropped = make(map[event.ObjID]bool)
	if action == refiner.Repropagate && x.g != nil {
		return x.maint.Recalculate(x.g)
	}
	return nil
}

// Run executes backtracking analysis from the given alert event, blocking
// until the queue drains, the time budget expires, or Stop is called.
// The alert must satisfy the plan's starting point (callers that already
// verified this can pass verifyStart=false via RunUnchecked).
func (x *Executor) Run(alert event.Event) (*Result, error) {
	ok, err := x.plan.MatchStart(alert, x.env)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("core: alert event %d does not satisfy the plan's starting point", alert.ID)
	}
	return x.RunUnchecked(alert)
}

// Prepare initializes the analysis state for the given alert — the
// dependency graph seeded with the alert edge, the maintainer, and the
// initial execution windows (Algorithm 1 line 1) — without starting the
// exploration loop. Run/RunUnchecked call it implicitly; callers that need
// the graph inspectable before (or while) the loop runs, such as the
// interactive console, may call it explicitly first.
func (x *Executor) Prepare(alert event.Event) error {
	min, max, ok := x.st.TimeRange()
	if !ok {
		return errors.New("core: store is empty")
	}
	x.mu.Lock()
	if x.prepared {
		x.mu.Unlock()
		if alert.ID != x.alert.ID {
			return fmt.Errorf("core: executor already prepared for event %d", x.alert.ID)
		}
		return nil
	}
	x.prepared = true
	x.alert = alert
	x.from, x.to = x.plan.Range(min, max)
	x.budget = x.plan.TimeBudget
	x.fwd = x.plan.Forward
	x.g = graph.New(alert)
	x.maint = maintainer.New(x.plan, x.env, x.from, x.to)
	x.maint.Seed(x.g)
	x.covered = make(map[event.ObjID]int64)
	x.dropped = make(map[event.ObjID]bool)
	x.started = x.clk.Now()
	x.pq = windowHeap{fifo: x.opts.FIFOQueue, forward: x.fwd}
	x.mu.Unlock()

	// The whole run is one root span; window spans nest under it, and the
	// timeline lane anchors its SLO watchdog at the start (so
	// time-to-first-update is measured too).
	if x.tracer != nil {
		x.runSpan = x.tracer.StartAt(telemetry.SpanRun, nil, x.started)
		x.runSpan.SetLane(x.tl.LaneID())
		x.runSpan.SetDetail(fmt.Sprintf("event=%d", alert.ID))
	}
	x.tl.RunStart(x.started, alert.ID)

	// The alert edge seeds the graph before exploration starts: record the
	// hop-0 object and the second endpoint so every graph node — including
	// the two the analyst named — has an inclusion record.
	x.rec.RunStart(alert, alert.Dst(), x.from, x.to)
	if x.rec != nil && alert.Src() != alert.Dst() {
		x.rec.EdgeAdded(alert.ID, alert.Src(), alert.Dst(), 1, x.from, x.to, 0)
	}

	// Line 1 of Algorithm 1: seed the queue with the alert's windows.
	x.enqueue(alert, 0)
	return nil
}

// RunUnchecked is Run without validating the alert against the starting
// point. Experiment harnesses use it to backtrack from arbitrary events.
func (x *Executor) RunUnchecked(alert event.Event) (*Result, error) {
	if err := x.Prepare(alert); err != nil {
		return nil, err
	}

	x.mu.Lock()
	x.running = true
	x.runGoid = goid()
	x.mu.Unlock()
	defer func() {
		// Release Pause/UpdatePlan callers blocked on the park handshake.
		x.mu.Lock()
		x.running = false
		x.runGoid = 0
		x.cond.Broadcast()
		x.mu.Unlock()
	}()

	reason := Completed
loop:
	for {
		// Honor pause/stop between window queries. Parking is a handshake:
		// the broadcast releases Pause (and UpdatePlan) callers waiting for
		// the loop to be provably outside processWindow.
		x.mu.Lock()
		if x.paused && !x.stop {
			x.parked = true
			x.cond.Broadcast()
			for x.paused && !x.stop {
				x.cond.Wait()
			}
			x.parked = false
		}
		if x.stop {
			x.mu.Unlock()
			reason = Stopped
			break loop
		}
		budget := x.budget
		x.mu.Unlock()

		if budget > 0 && x.clk.Now().Sub(x.started) >= budget {
			reason = TimeBudgetExceeded
			break loop
		}
		w, ok := x.pq.pop()
		if !ok {
			break loop
		}
		x.tel.queueDepth.Set(int64(x.pq.Len()))
		if err := x.processWindow(w); err != nil {
			return nil, err
		}
	}

	endAt := x.clk.Now()

	// Windows still queued when a budget or the analyst ended the run are
	// frontiers the analysis never explored: record each so Explain can say
	// "this region was abandoned", not just stay silent about it.
	if (x.rec != nil || x.tl != nil) && reason != Completed {
		for {
			w, ok := x.pq.pop()
			if !ok {
				break
			}
			x.rec.WindowAbandoned(w.Obj, w.Begin, w.Finish, reason.String())
			x.tl.Abandoned(endAt, w.Obj, w.Begin, w.Finish, reason.String())
		}
	}

	// Close the run: the lane's watchdog checks the tail gap (a run may
	// stall by ending long after its last update) and the root span ends.
	x.tl.RunEnd(endAt, reason.String())
	if x.runSpan != nil {
		x.runSpan.EndAt(endAt)
	}

	return &Result{
		Graph:   x.g,
		Reason:  reason,
		Updates: x.updates,
		Elapsed: endAt.Sub(x.started),
		Windows: x.windows,
	}, nil
}

// enqueue generates and schedules the execution windows of event e, whose
// flow-source object (flow destination in forward mode) is about to be
// explored. boost carries prioritize-rule priority. Ranges already scheduled
// for the same object are skipped, so every (object, time point) pair is
// queried at most once per run.
func (x *Executor) enqueue(e event.Event, boost int) {
	if x.fwd {
		x.enqueueForward(e, boost)
		return
	}
	obj := e.Src()
	ts := x.from
	te := e.Time
	if te > x.to {
		te = x.to
	}
	extension := false
	if prev, ok := x.covered[obj]; ok {
		if te <= prev {
			return
		}
		ts = prev // only the uncovered suffix needs new windows
		extension = true
	}
	x.covered[obj] = te
	clipped := e
	clipped.Time = te
	var ws []ExecWindow
	switch {
	case extension:
		// Coverage extensions are slivers between two events of the same
		// object; one window suffices (re-splitting bounds its size).
		ws = []ExecWindow{{Begin: ts, Finish: te, Obj: obj, E: clipped}}
	case x.opts.UniformWindows:
		ws = genUniformWindows(clipped, ts, x.opts.Windows)
	default:
		ws = GenExeWindows(clipped, ts, x.opts.Windows)
	}
	state := -1
	if n, ok := x.g.Node(obj); ok {
		state = n.State
	}
	for _, w := range ws {
		// Index statistics make empty ranges detectable without touching
		// the table (CountBackward models an index-only cardinality
		// estimate); provably empty windows are never queried. The estimate
		// rides along on the window so the re-split check at pop time does
		// not count the identical range a second time.
		n, err := x.st.CountBackward(w.Obj, w.Begin, w.Finish)
		if err == nil && n == 0 {
			x.rec.WindowEmpty(w.Obj, w.Begin, w.Finish)
			continue
		}
		w.Card = n
		w.State = state
		w.Boost = boost
		x.rec.WindowEnqueued(w.Obj, w.Begin, w.Finish, w.Card, w.State, w.Boost)
		if x.tl != nil {
			x.tl.Enqueued(x.clk.Now(), w.Obj, w.Begin, w.Finish, w.Card)
		}
		x.pq.push(w)
	}
	x.tel.queueDepth.Set(int64(x.pq.Len()))
}

// enqueueForward mirrors enqueue for impact tracking: windows extend from
// the event's time towards the end of the analysis range, and the explored
// object is the event's flow destination.
func (x *Executor) enqueueForward(e event.Event, boost int) {
	obj := e.Dst()
	te := e.Time
	if te < x.from {
		te = x.from
	}
	hi := x.to
	extension := false
	if prev, ok := x.covered[obj]; ok {
		if te+1 >= prev {
			return // already covered from an earlier event
		}
		hi = prev // only the uncovered prefix needs new windows
		extension = true
	}
	x.covered[obj] = te + 1
	clipped := e
	clipped.Time = te
	var ws []ExecWindow
	if extension {
		ws = []ExecWindow{{Begin: te + 1, Finish: hi, Obj: obj, E: clipped}}
	} else {
		ws = GenExeWindowsForward(clipped, hi, x.opts.Windows)
	}
	state := -1
	if n, ok := x.g.Node(obj); ok {
		state = n.State
	}
	for _, w := range ws {
		n, err := x.st.CountForward(w.Obj, w.Begin, w.Finish)
		if err == nil && n == 0 {
			x.rec.WindowEmpty(w.Obj, w.Begin, w.Finish)
			continue
		}
		w.Card = n
		w.State = state
		w.Boost = boost
		x.rec.WindowEnqueued(w.Obj, w.Begin, w.Finish, w.Card, w.State, w.Boost)
		if x.tl != nil {
			x.tl.Enqueued(x.clk.Now(), w.Obj, w.Begin, w.Finish, w.Card)
		}
		x.pq.push(w)
	}
	x.tel.queueDepth.Set(int64(x.pq.Len()))
}

// count is the direction-resolved index-only cardinality estimate. A plain
// method dispatch here (instead of binding x.st.CountBackward to a variable)
// keeps processWindow free of per-call closure allocations.
func (x *Executor) count(obj event.ObjID, from, to int64) (int, error) {
	if x.fwd {
		return x.st.CountForward(obj, from, to)
	}
	return x.st.CountBackward(obj, from, to)
}

// query is the direction-resolved window fetch, appending into buf. With a
// memo bound it consults the shared closure cache first; hit or miss, the
// charged cost is identical (counts stay index-only and uncached either
// way — they never charge).
func (x *Executor) query(buf []event.Event, obj event.ObjID, from, to int64) ([]event.Event, error) {
	if x.mv != nil {
		if x.fwd {
			return x.mv.AppendForward(buf, obj, from, to)
		}
		return x.mv.AppendBackward(buf, obj, from, to)
	}
	if x.fwd {
		return x.st.AppendForward(buf, obj, from, to)
	}
	return x.st.AppendBackward(buf, obj, from, to)
}

// processWindow runs one bounded query (Algorithm 1 lines 3-7): fetch the
// events inside the window that flow into the window's object, add them as
// edges, and schedule their own windows. Windows that would retrieve more
// than MaxWindowRows rows are split in half (re-queued nearest-half first)
// instead of being queried, keeping every retrieval — and therefore every
// inter-update gap — bounded.
func (x *Executor) processWindow(w ExecWindow) error {
	if !x.opts.NoSplit && w.Finish-w.Begin >= 2 {
		// Reuse the enqueue-time cardinality estimate; the store is sealed,
		// so the count cannot have changed. Only re-split halves (Card == 0,
		// unknown) need a fresh count.
		n := w.Card
		if n <= 0 {
			var err error
			n, err = x.count(w.Obj, w.Begin, w.Finish)
			if err != nil {
				return err
			}
		}
		if n > x.opts.MaxWindowRows {
			var sp *telemetry.Span
			if x.tracer != nil {
				sp = x.tracer.StartAt(telemetry.SpanWindowResplit, x.runSpan, x.clk.Now())
				sp.SetLane(x.tl.LaneID())
				sp.SetDetail(fmt.Sprintf("obj=%d rows=%d span=%ds", w.Obj, n, w.Finish-w.Begin))
				sp.AddArg("card", int64(n))
			}
			if x.tl != nil {
				x.tl.Resplit(x.clk.Now(), w.Obj, w.Begin, w.Finish, n)
			}
			mid := w.Begin + (w.Finish-w.Begin)/2
			far, near := w, w
			if x.fwd {
				near.Finish = mid
				far.Begin = mid
			} else {
				near.Begin = mid
				far.Finish = mid
			}
			// One index-only count prices both halves: the posting range is
			// exact over contiguous half-open windows, so far = n - near.
			// Empty halves are pruned exactly as at enqueue time.
			nc, err := x.count(near.Obj, near.Begin, near.Finish)
			if err != nil {
				return err
			}
			near.Card, far.Card = nc, n-nc
			x.rec.WindowResplit(w.Obj, w.Begin, w.Finish, n)
			if near.Card > 0 {
				x.rec.WindowEnqueued(near.Obj, near.Begin, near.Finish, near.Card, near.State, near.Boost)
				if x.tl != nil {
					x.tl.Enqueued(x.clk.Now(), near.Obj, near.Begin, near.Finish, near.Card)
				}
				x.pq.push(near)
			}
			if far.Card > 0 {
				x.rec.WindowEnqueued(far.Obj, far.Begin, far.Finish, far.Card, far.State, far.Boost)
				if x.tl != nil {
					x.tl.Enqueued(x.clk.Now(), far.Obj, far.Begin, far.Finish, far.Card)
				}
				x.pq.push(far)
			}
			x.tel.resplits.Inc()
			x.tel.queueDepth.Set(int64(x.pq.Len()))
			if sp != nil {
				sp.EndAt(x.clk.Now())
			}
			return nil
		}
	}
	x.windows++
	x.tel.windows.Inc()
	var qsp *telemetry.Span
	var qstart time.Time
	if x.tracer != nil || x.tl != nil {
		qstart = x.clk.Now()
	}
	if x.tracer != nil {
		qsp = x.tracer.StartAt(telemetry.SpanWindowQuery, x.runSpan, qstart)
		qsp.SetLane(x.tl.LaneID())
		qsp.SetDetail(fmt.Sprintf("obj=%d [%d,%d)", w.Obj, w.Begin, w.Finish))
	}
	// The window query appends into a buffer reused across every window of
	// the run, so the steady-state loop performs no allocations.
	depsBuf, err := x.query(x.depsBuf[:0], w.Obj, w.Begin, w.Finish)
	if x.tracer != nil || x.tl != nil {
		qend := x.clk.Now()
		if qsp != nil {
			// The charged cost as span args: retrieved rows plus the
			// enqueue-time posting estimate the scheduler priced it at.
			qsp.AddArg("rows", int64(len(depsBuf)))
			qsp.AddArg("card", int64(w.Card))
			qsp.EndAt(qend)
		}
		x.tl.Query(qstart, qend, w.Obj, w.Begin, w.Finish, len(depsBuf))
	}
	if err != nil {
		return err
	}
	x.depsBuf = depsBuf
	deps := depsBuf
	x.rec.WindowQueried(w.Obj, w.Begin, w.Finish, len(deps))
	hopLimit := x.plan.HopBudget
	for _, dep := range deps {
		src := dep.Src()
		known := dep.Dst()
		if x.fwd {
			src, known = known, src // src is the newly discovered side
		}
		if dep.ID == w.E.ID || x.g.HasEdge(dep.ID) {
			x.rec.EdgeDedup(dep.ID, src)
			continue
		}
		if x.dropped[src] {
			x.rec.EdgeDropped(dep.ID, src, known)
			continue
		}
		// General host constraint.
		if !x.plan.HostAllowed(x.st.Object(dep.Subject).Host) ||
			!x.plan.HostAllowed(x.st.Object(dep.Object).Host) {
			if x.rec != nil {
				host := x.st.Object(dep.Subject).Host
				if x.plan.HostAllowed(host) {
					host = x.st.Object(dep.Object).Host
				}
				x.rec.EdgeHostFiltered(dep.ID, src, known, host)
			}
			continue
		}
		// Where statement: objects failing it are deleted from the
		// analysis without further exploration.
		if x.plan.Where != nil {
			keep, err := x.plan.Where.Keep(dep, src, x.env, x.from, x.to)
			if err != nil {
				return err
			}
			if !keep {
				x.dropped[src] = true
				if x.rec != nil {
					clause, pos := x.plan.Where.FailingClause(dep, src, x.env, x.from, x.to)
					x.rec.EdgeWhereRejected(dep.ID, src, known, clause, pos)
				}
				continue
			}
		}
		// Hop budget: stop extending paths longer than the limit.
		if hopLimit > 0 {
			if kn, ok := x.g.Node(known); ok && kn.Hop+1 > hopLimit {
				x.rec.EdgeHopBudget(dep.ID, src, known, kn.Hop+1, hopLimit)
				continue
			}
		}
		addEdge := x.g.AddEdge
		if x.fwd {
			addEdge = x.g.AddForwardEdge
		}
		newEdge, newNode, err := addEdge(dep)
		if err != nil {
			return err
		}
		if !newEdge {
			continue
		}
		if _, err := x.maint.OnEdge(x.g, dep); err != nil {
			return err
		}
		boost := x.boostFor(dep, w)
		if x.rec != nil {
			hop := 0
			if n, ok := x.g.Node(src); ok {
				hop = n.Hop
			}
			x.rec.EdgeAdded(dep.ID, src, known, hop, w.Begin, w.Finish, boost)
		}
		x.updates++
		if x.opts.OnUpdate != nil || x.tel.updateGap != nil || x.tl != nil {
			now := x.clk.Now()
			// The lane's watchdog measures between distinct instants; the
			// recorder itself collapses same-instant edges into one update.
			x.tl.Update(now)
			// The inter-update gap histogram is Table II's statistic as a
			// live metric: edges landing at the same instant (one
			// retrieval's batch) are one update, so gaps are measured
			// between distinct timestamps only.
			if x.tel.updateGap != nil && !now.Equal(x.lastUpdate) {
				if !x.lastUpdate.IsZero() {
					x.tel.updateGap.Observe(now.Sub(x.lastUpdate).Seconds())
				}
				x.lastUpdate = now
			}
			if x.opts.OnUpdate != nil {
				x.opts.OnUpdate(Update{Event: dep, NewNode: newNode, At: now, Edges: x.g.NumEdges()})
			}
		}
		x.enqueue(dep, boost)
	}
	return nil
}

// boostFor decides whether the newly discovered edge earns prioritize-rule
// priority: either the edge itself matches a rule's downstream pattern, or
// the window it arrived through was already boosted and the edge matches the
// upstream pattern with the byte-conservation check against the window's
// generating event.
func (x *Executor) boostFor(dep event.Event, w ExecWindow) int {
	for _, rule := range x.plan.Prioritize {
		if rule.Down.Match(dep, x.env) {
			return 1
		}
		if w.Boost > 0 && rule.BoostEdge(dep, w.E, x.env) {
			return 1
		}
	}
	return 0
}

// genUniformWindows is the ablation variant: k equal-width windows.
func genUniformWindows(e event.Event, ts int64, k int) []ExecWindow {
	te := e.Time
	if te <= ts || k < 1 {
		return nil
	}
	width := (te - ts) / int64(k)
	if width < 1 {
		width = 1
	}
	out := make([]ExecWindow, 0, k)
	hi := te
	for i := 0; i < k && hi > ts; i++ {
		lo := hi - width
		if i == k-1 || lo < ts {
			lo = ts
		}
		out = append(out, ExecWindow{Begin: lo, Finish: hi, Obj: e.Src(), E: e})
		hi = lo
	}
	return out
}
