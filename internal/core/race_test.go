package core

import (
	"sync"
	"testing"
	"time"

	"aptrace/internal/event"
	"aptrace/internal/refiner"
	"aptrace/internal/simclock"
)

// TestPauseBlocksForUpdatePlan is the regression test for the documented
// Pause contract: pause → UpdatePlan from a controlling goroutine must never
// race an in-flight processWindow reading x.plan. Before the fix, Pause only
// set the flag and returned immediately, so the plan swap raced the run
// loop; the race detector catches it on this loop.
func TestPauseBlocksForUpdatePlan(t *testing.T) {
	clk := simclock.NewSimulated(time.Time{})
	s, alert := fixture(t, clk, 5000)
	started := make(chan struct{})
	var once sync.Once
	x, err := New(s, wildcardPlan(t, ""), Options{OnUpdate: func(Update) {
		once.Do(func() { close(started) })
	}})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := x.RunUnchecked(alert); err != nil {
			t.Error(err)
		}
	}()

	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("run produced no updates")
	}
	for i := 0; i < 50; i++ {
		x.Pause()
		// With the pause acknowledged, the loop is parked (or finished):
		// swapping the plan cannot race a window in flight.
		if err := x.UpdatePlan(wildcardPlan(t, ""), refiner.Resume); err != nil {
			t.Fatal(err)
		}
		x.Resume()
	}
	x.Stop()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("run did not stop")
	}
}

// TestUpdatePlanRequiresPause pins the guard added with the blocking pause:
// swapping the plan under a live, unpaused run loop is refused instead of
// racing it.
func TestUpdatePlanRequiresPause(t *testing.T) {
	clk := simclock.NewSimulated(time.Time{})
	s, alert := fixture(t, clk, 5000)
	started := make(chan struct{})
	var once sync.Once
	x, err := New(s, wildcardPlan(t, ""), Options{OnUpdate: func(Update) {
		once.Do(func() { close(started) })
	}})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		x.RunUnchecked(alert)
	}()
	<-started
	if err := x.UpdatePlan(wildcardPlan(t, ""), refiner.Resume); err == nil {
		// The run may legitimately have finished already; only a swap
		// accepted while the loop is live is a bug.
		x.mu.Lock()
		running := x.running
		x.mu.Unlock()
		if running {
			t.Fatal("UpdatePlan on a running, unpaused executor must be refused")
		}
	}
	x.Stop()
	<-done
}

// TestGraphConcurrentWithPrepare is the regression test for the
// unsynchronized Graph() read: Prepare writes x.g under the mutex while
// observers poll Graph(); before the fix the bare read raced the write.
func TestGraphConcurrentWithPrepare(t *testing.T) {
	s, alert := fixture(t, nil, 100)
	x, err := New(s, wildcardPlan(t, ""), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := x.Prepare(alert); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			_ = x.Graph()
		}
	}()
	wg.Wait()
	if x.Graph() == nil {
		t.Fatal("graph must be visible after Prepare")
	}
}

// checkWindowInvariants asserts the contract shared by both generators:
// at most MaxWindows windows, positive widths, and an exact contiguous
// cover of the requested range (nearest-first for backward, nearest-first
// meaning ascending for forward).
func checkWindowInvariants(t *testing.T, ws []ExecWindow, lo, hi int64, forward bool) {
	t.Helper()
	if len(ws) == 0 {
		t.Fatal("no windows generated for a non-empty span")
	}
	if len(ws) > MaxWindows {
		t.Fatalf("generated %d windows, cap is %d", len(ws), MaxWindows)
	}
	for i, w := range ws {
		if w.Finish <= w.Begin {
			t.Fatalf("window %d has non-positive width: [%d,%d)", i, w.Begin, w.Finish)
		}
	}
	if forward {
		if ws[0].Begin != lo || ws[len(ws)-1].Finish != hi {
			t.Fatalf("cover is [%d,%d), want [%d,%d)", ws[0].Begin, ws[len(ws)-1].Finish, lo, hi)
		}
		for i := 1; i < len(ws); i++ {
			if ws[i].Begin != ws[i-1].Finish {
				t.Fatalf("gap between windows %d and %d", i-1, i)
			}
		}
		return
	}
	if ws[0].Finish != hi || ws[len(ws)-1].Begin != lo {
		t.Fatalf("cover is [%d,%d), want [%d,%d)", ws[len(ws)-1].Begin, ws[0].Finish, lo, hi)
	}
	for i := 1; i < len(ws); i++ {
		if ws[i].Finish != ws[i-1].Begin {
			t.Fatalf("gap between windows %d and %d", i-1, i)
		}
	}
}

// TestGenExeWindowsLargeK is the overflow regression test: with k >= 63 the
// un-clamped generators computed 2^k - 1 in int64, overflowing into a
// garbage sigma and producing more than MaxWindows windows over a wide
// span. The span 2^62 makes the failure visible: pre-fix k=63 emits 63
// windows (and k=64 emits 64), post-clamp both emit exactly 62.
func TestGenExeWindowsLargeK(t *testing.T) {
	// A raw event with a huge timestamp; Dir=FlowOut makes Subject the
	// flow source (the object backward windows search).
	e := event.Event{ID: 1, Time: 1 << 62, Subject: 0, Object: 1, Dir: event.FlowOut}
	for _, k := range []int{62, 63, 64} {
		ws := GenExeWindows(e, 0, k)
		checkWindowInvariants(t, ws, 0, e.Time, false)

		fe := event.Event{ID: 2, Time: 0, Subject: 0, Object: 1, Dir: event.FlowOut}
		fws := GenExeWindowsForward(fe, 1<<62, k)
		checkWindowInvariants(t, fws, fe.Time+1, 1<<62, true)
	}
	// Geometric shape survives the clamp: nearest window smallest.
	ws := GenExeWindows(e, 0, 63)
	if len(ws) != MaxWindows {
		t.Fatalf("k=63 over a 2^62 span must clamp to %d windows, got %d", MaxWindows, len(ws))
	}
	if first, last := ws[0], ws[len(ws)-1]; first.Finish-first.Begin >= last.Finish-last.Begin {
		t.Fatal("nearest window must be the smallest")
	}
}

// TestExecutorClampsWindowCount: an absurd Options.Windows must not break
// the analysis — core.New clamps it and the run still reaches the full
// closure.
func TestExecutorClampsWindowCount(t *testing.T) {
	s, alert := fixture(t, nil, 200)
	want := naiveClosure(s, alert)
	x, err := New(s, wildcardPlan(t, ""), Options{Windows: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	res, err := x.RunUnchecked(alert)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumEdges() != len(want) {
		t.Fatalf("clamped run found %d edges, closure has %d", res.Graph.NumEdges(), len(want))
	}
}
