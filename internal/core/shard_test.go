package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"aptrace/internal/event"
	"aptrace/internal/graph"
	"aptrace/internal/simclock"
	"aptrace/internal/store"
)

// shardedPair builds a flat store and an N-shard store from one identical
// random ingestion stream (multi-host, so host×time routing actually
// spreads events), each with its own simulated clock.
func shardedPair(t testing.TB, seed int64, n, shards int) (flat, sharded *store.Store) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	type rec struct {
		tm       int64
		sub, obj event.Object
		act      event.Action
		dir      event.Direction
		amt      int64
	}
	var stream []rec
	hosts := []string{"h1", "h2", "h3", "h4"}
	for i := 0; i < n; i++ {
		h := hosts[rng.Intn(len(hosts))]
		sub := event.Process(h, fmt.Sprintf("p%02d", rng.Intn(10)), int32(rng.Intn(10)+1), int64(rng.Intn(50)))
		var obj event.Object
		var act event.Action
		var dir event.Direction
		switch rng.Intn(6) {
		case 0:
			obj = event.Process(h, fmt.Sprintf("c%02d", rng.Intn(6)), int32(rng.Intn(6)+100), 1)
			act, dir = event.ActStart, event.FlowOut
		case 1:
			obj = event.File(h, fmt.Sprintf("/f/%02d", rng.Intn(12)))
			act, dir = event.ActWrite, event.FlowOut
		case 2, 3:
			obj = event.File(h, fmt.Sprintf("/f/%02d", rng.Intn(12)))
			act, dir = event.ActRead, event.FlowIn
		case 4:
			obj = event.Socket(h, "10.0.0.1", uint16(1000+rng.Intn(4)), "9.9.9.9", 443)
			act, dir = event.ActSend, event.FlowOut
		case 5:
			obj = event.Socket(h, "10.0.0.1", uint16(1000+rng.Intn(4)), "9.9.9.9", 443)
			act, dir = event.ActRecv, event.FlowIn
		}
		stream = append(stream, rec{rng.Int63n(100_000), sub, obj, act, dir, rng.Int63n(4096)})
	}
	build := func(opts ...store.Option) *store.Store {
		s := store.New(simclock.NewSimulated(time.Time{}), opts...)
		for _, r := range stream {
			if _, err := s.AddEvent(r.tm, r.sub, r.obj, r.act, r.dir, r.amt); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Seal(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	return build(), build(store.WithShards(shards))
}

// TestExecutorDifferentialSharded is the end-to-end charged-cost invariant:
// a full backtracking session — graph, DOT bytes, update count, stop
// reason, store stats, simulated elapsed — is byte-identical on a flat and
// a sharded store, for several shard counts and window policies. This is
// what guarantees Table II stdout and experiment output cannot move when a
// deployment turns sharding on.
func TestExecutorDifferentialSharded(t *testing.T) {
	for _, shards := range []int{2, 4, 7} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			flat, sharded := shardedPair(t, int64(1000+shards), 2500, shards)
			rng := rand.New(rand.NewSource(5))
			alerts := flat.RandomEvents(4, rng)
			alerts2 := sharded.RandomEvents(4, rand.New(rand.NewSource(5)))
			for i := range alerts {
				if alerts[i] != alerts2[i] {
					t.Fatalf("sampled alerts diverged: %+v vs %+v", alerts[i], alerts2[i])
				}
			}
			run := func(s *store.Store, alert event.Event, opts Options) (string, store.Stats, time.Duration) {
				t.Helper()
				v, err := s.View(simclock.NewSimulated(time.Time{}))
				if err != nil {
					t.Fatal(err)
				}
				x, err := New(v, wildcardPlan(t, ""), opts)
				if err != nil {
					t.Fatal(err)
				}
				res, err := x.RunUnchecked(alert)
				if err != nil {
					t.Fatal(err)
				}
				var dot strings.Builder
				if err := graph.WriteDOT(&dot, res.Graph, v.Object); err != nil {
					t.Fatal(err)
				}
				return fmt.Sprintf("reason=%v updates=%d windows=%d dot=%s",
					res.Reason, res.Updates, res.Windows, dot.String()), v.Stats(), res.Elapsed
			}
			for ai, alert := range alerts {
				opts := Options{Windows: 1 + ai*3, UniformWindows: ai%2 == 0}
				fOut, fStats, fElapsed := run(flat, alert, opts)
				sOut, sStats, sElapsed := run(sharded, alert, opts)
				if fOut != sOut {
					t.Fatalf("alert %d: session output diverged\nflat:    %.300s\nsharded: %.300s", ai, fOut, sOut)
				}
				if fStats != sStats {
					t.Fatalf("alert %d: store stats diverged: %+v vs %+v", ai, fStats, sStats)
				}
				if fElapsed != sElapsed {
					t.Fatalf("alert %d: simulated elapsed diverged: %v vs %v", ai, fElapsed, sElapsed)
				}
			}
		})
	}
}
