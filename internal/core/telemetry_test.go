package core

import (
	"math"
	"testing"
	"time"

	"aptrace/internal/graph"
	"aptrace/internal/simclock"
	"aptrace/internal/stats"
	"aptrace/internal/telemetry"
)

// TestExecutorTelemetryMatchesRecordedUpdates runs an instrumented analysis
// and cross-checks every published metric against the ground truth the run
// itself recorded: the inter-update-gap histogram must agree with the
// deltas of the distinct update timestamps (Table II's statistic), and the
// executor counters must agree with the Result.
func TestExecutorTelemetryMatchesRecordedUpdates(t *testing.T) {
	clk := simclock.NewSimulated(time.Time{})
	st, alert := fixture(t, clk, 400)
	reg := telemetry.NewRegistry()
	st.SetTelemetry(reg)

	var times []time.Time
	x, err := New(st, wildcardPlan(t, ""), Options{
		Telemetry: reg,
		OnUpdate:  func(u graph.Update) { times = append(times, u.At) },
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := x.RunUnchecked(alert)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates == 0 {
		t.Fatal("run produced no updates; fixture broken")
	}

	snap := reg.Snapshot()

	// The gap histogram must match the session-recorded timestamp series.
	deltas := stats.Deltas(stats.DistinctTimes(times))
	gap := snap.Histograms[telemetry.MetricExecUpdateGap]
	if gap.Count != int64(len(deltas)) {
		t.Fatalf("gap histogram count = %d, want %d distinct-update deltas", gap.Count, len(deltas))
	}
	var wantSum float64
	for _, d := range deltas {
		wantSum += d.Seconds()
	}
	if math.Abs(gap.Sum-wantSum) > 1e-6*math.Max(1, wantSum) {
		t.Fatalf("gap histogram sum = %gs, want %gs", gap.Sum, wantSum)
	}

	// Executor counters agree with the result.
	if got := snap.Counters[telemetry.MetricExecWindows]; got != int64(res.Windows) {
		t.Fatalf("windows counter = %d, Result.Windows = %d", got, res.Windows)
	}
	if snap.Counters[telemetry.MetricExecResplits] == 0 {
		t.Fatal("heavy-hitter fixture must force at least one re-split")
	}
	if snap.Gauges[telemetry.MetricExecQueueDepth] != 0 {
		t.Fatalf("drained run must leave queue depth 0, got %d",
			snap.Gauges[telemetry.MetricExecQueueDepth])
	}

	// Store counters agree with the store's own accounting (the acceptance
	// criterion for the /metrics endpoint).
	s := st.Stats()
	if got := snap.Counters[telemetry.MetricStoreRowsExamined]; got != s.RowsExamined {
		t.Fatalf("rows examined counter = %d, store.Stats() = %d", got, s.RowsExamined)
	}
	if got := snap.Counters[telemetry.MetricStoreQueries]; got != s.Queries {
		t.Fatalf("queries counter = %d, store.Stats() = %d", got, s.Queries)
	}

	// Spans: every executed window traced a window.query span, every
	// re-split a window.resplit span (ring capacity permitting).
	var queries, resplits int
	for _, sp := range reg.Tracer().Spans() {
		switch sp.Name {
		case telemetry.SpanWindowQuery:
			queries++
		case telemetry.SpanWindowResplit:
			resplits++
		}
	}
	total := int64(queries + resplits)
	wantTotal := snap.Counters[telemetry.MetricExecWindows] + snap.Counters[telemetry.MetricExecResplits]
	if wantTotal <= telemetry.DefaultSpanCapacity && total != wantTotal {
		t.Fatalf("recorded %d spans, want %d (windows+resplits)", total, wantTotal)
	}
}

// TestResplitReusesEnqueueCardinality is the regression test for the
// redundant per-window recount: enqueue already counted every window for
// the empty-window prune, so the re-split check must ride on that estimate
// (ExecWindow.Card) and only one fresh count per re-split — pricing both
// halves — is allowed. On this fixed fixture the pre-fix executor performed
// 502 posting-list lookups and charged 84 store queries; carrying the
// estimate brings those to 413 and 79. The thresholds sit between the two
// so the test fails if the pop-time recount ever comes back.
func TestResplitReusesEnqueueCardinality(t *testing.T) {
	clk := simclock.NewSimulated(time.Time{})
	st, alert := fixture(t, clk, 400)
	reg := telemetry.NewRegistry()
	st.SetTelemetry(reg)
	x, err := New(st, wildcardPlan(t, ""), Options{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := x.RunUnchecked(alert)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()

	lookups := snap.Counters[telemetry.MetricStorePostingHits] +
		snap.Counters[telemetry.MetricStorePostingMisses]
	if lookups == 0 {
		t.Fatal("fixture produced no posting lookups; telemetry broken")
	}
	if lookups > 460 {
		t.Fatalf("posting lookups = %d; the re-split check is recounting ranges the enqueue already counted", lookups)
	}
	if q := snap.Counters[telemetry.MetricStoreQueries]; q > 81 {
		t.Fatalf("charged queries = %d; empty re-split halves must be pruned, not queried", q)
	}

	// The saved counts must not change what the analysis finds.
	want := naiveClosure(st, alert)
	if res.Graph.NumEdges() != len(want) {
		t.Fatalf("graph has %d edges, closure %d", res.Graph.NumEdges(), len(want))
	}
}

// TestExecutorNilTelemetryUnchanged pins the disabled path: a run with no
// registry must behave identically (same result, same simulated elapsed
// time) to an instrumented run over the same fixture.
func TestExecutorNilTelemetryUnchanged(t *testing.T) {
	run := func(reg *telemetry.Registry) (*Result, time.Duration) {
		clk := simclock.NewSimulated(time.Time{})
		st, alert := fixture(t, clk, 400)
		if reg != nil {
			st.SetTelemetry(reg)
		}
		x, err := New(st, wildcardPlan(t, ""), Options{Telemetry: reg})
		if err != nil {
			t.Fatal(err)
		}
		res, err := x.RunUnchecked(alert)
		if err != nil {
			t.Fatal(err)
		}
		return res, res.Elapsed
	}
	off, offElapsed := run(nil)
	on, onElapsed := run(telemetry.NewRegistry())
	if off.Updates != on.Updates || off.Windows != on.Windows ||
		off.Graph.NumEdges() != on.Graph.NumEdges() {
		t.Fatalf("telemetry changed the analysis: off=%+v on=%+v", off, on)
	}
	if offElapsed != onElapsed {
		t.Fatalf("telemetry perturbed simulated time: off=%v on=%v", offElapsed, onElapsed)
	}
}
