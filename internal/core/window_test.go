package core

import (
	"math/rand"
	"testing"

	"aptrace/internal/event"
)

func TestGenExeWindowsGeometric(t *testing.T) {
	// Span 15000s with k=4: sigma = 15000/15 = 1000.
	// Windows (nearest first): [14000,15000) [12000,14000) [8000,12000) [0,8000).
	e := event.Event{ID: 1, Time: 15000, Subject: 7, Dir: event.FlowOut}
	ws := GenExeWindows(e, 0, 4)
	if len(ws) != 4 {
		t.Fatalf("got %d windows", len(ws))
	}
	want := [][2]int64{{14000, 15000}, {12000, 14000}, {8000, 12000}, {0, 8000}}
	for i, w := range ws {
		if w.Begin != want[i][0] || w.Finish != want[i][1] {
			t.Errorf("window %d = [%d,%d), want [%d,%d)", i, w.Begin, w.Finish, want[i][0], want[i][1])
		}
		if w.Obj != e.Src() || w.E.ID != e.ID {
			t.Errorf("window %d carries wrong object/event", i)
		}
	}
	// Ratio-2 lengths except the last (absorbs the remainder).
	for i := 1; i < len(ws)-1; i++ {
		l0 := ws[i-1].Finish - ws[i-1].Begin
		l1 := ws[i].Finish - ws[i].Begin
		if l1 != 2*l0 {
			t.Errorf("length ratio at %d: %d -> %d", i, l0, l1)
		}
	}
}

func TestGenExeWindowsDegenerate(t *testing.T) {
	e := event.Event{Time: 100}
	if ws := GenExeWindows(e, 100, 8); ws != nil {
		t.Errorf("empty span: %v", ws)
	}
	if ws := GenExeWindows(e, 200, 8); ws != nil {
		t.Errorf("negative span: %v", ws)
	}
	if ws := GenExeWindows(e, 0, 0); ws != nil {
		t.Errorf("k=0: %v", ws)
	}
	// Tiny span: fewer windows, still full coverage.
	ws := GenExeWindows(e, 97, 8)
	if len(ws) == 0 || ws[len(ws)-1].Begin != 97 || ws[0].Finish != 100 {
		t.Errorf("tiny span windows: %+v", ws)
	}
}

// Property: windows are disjoint, ordered nearest-first, and their union is
// exactly [ts, te).
func TestGenExeWindowsCoverageProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		ts := rng.Int63n(1_000_000)
		te := ts + rng.Int63n(2_000_000) + 1
		k := 1 + rng.Intn(12)
		e := event.Event{Time: te, Subject: 1, Dir: event.FlowOut}
		ws := GenExeWindows(e, ts, k)
		if len(ws) == 0 || len(ws) > k {
			t.Fatalf("trial %d: %d windows for k=%d", trial, len(ws), k)
		}
		if ws[0].Finish != te {
			t.Fatalf("trial %d: first window ends at %d, want %d", trial, ws[0].Finish, te)
		}
		for i, w := range ws {
			if w.Begin >= w.Finish {
				t.Fatalf("trial %d window %d: empty [%d,%d)", trial, i, w.Begin, w.Finish)
			}
			if i > 0 && w.Finish != ws[i-1].Begin {
				t.Fatalf("trial %d: gap/overlap between windows %d and %d", trial, i-1, i)
			}
		}
		if ws[len(ws)-1].Begin != ts {
			t.Fatalf("trial %d: last window starts at %d, want %d", trial, ws[len(ws)-1].Begin, ts)
		}
	}
}

func TestUniformWindows(t *testing.T) {
	e := event.Event{Time: 1000, Subject: 3, Dir: event.FlowOut}
	ws := genUniformWindows(e, 0, 4)
	if len(ws) != 4 {
		t.Fatalf("%d windows", len(ws))
	}
	for i, w := range ws {
		if l := w.Finish - w.Begin; l != 250 {
			t.Errorf("window %d width %d, want 250", i, l)
		}
	}
	if ws := genUniformWindows(e, 1000, 4); ws != nil {
		t.Error("empty span must yield nothing")
	}
}

func TestWindowHeapOrdering(t *testing.T) {
	var h windowHeap
	h.push(ExecWindow{State: 0, Boost: 0, Finish: 100})
	h.push(ExecWindow{State: 0, Boost: 0, Finish: 900})
	h.push(ExecWindow{State: 2, Boost: 0, Finish: 50})
	h.push(ExecWindow{State: 0, Boost: 1, Finish: 10})
	h.push(ExecWindow{State: 2, Boost: 0, Finish: 500})

	pops := make([]ExecWindow, 0, 5)
	for {
		w, ok := h.pop()
		if !ok {
			break
		}
		pops = append(pops, w)
	}
	// Expected: state 2 (finish 500 then 50), then boost 1, then finish 900, 100.
	if pops[0].Finish != 500 || pops[1].Finish != 50 {
		t.Errorf("state ordering broken: %v %v", pops[0], pops[1])
	}
	if pops[2].Boost != 1 {
		t.Errorf("boost should come third: %+v", pops[2])
	}
	if pops[3].Finish != 900 || pops[4].Finish != 100 {
		t.Errorf("finish ordering broken: %v %v", pops[3], pops[4])
	}
}

func TestWindowHeapFIFO(t *testing.T) {
	h := windowHeap{fifo: true}
	h.push(ExecWindow{State: 0, Finish: 1})
	h.push(ExecWindow{State: 9, Finish: 999})
	h.push(ExecWindow{State: 5, Finish: 5})
	order := []int64{1, 999, 5}
	for i := range order {
		w, _ := h.pop()
		if w.Finish != order[i] {
			t.Fatalf("fifo pop %d = finish %d, want %d", i, w.Finish, order[i])
		}
	}
}

func TestWindowHeapEmptyPop(t *testing.T) {
	var h windowHeap
	if _, ok := h.pop(); ok {
		t.Fatal("pop on empty heap must report not-ok")
	}
}
