package alerts

import (
	"testing"

	"aptrace/internal/event"
	"aptrace/internal/workload"
)

func TestRareChildRuleLearnsAndDetects(t *testing.T) {
	ds, err := workload.Generate(workload.Config{Seed: 13, Hosts: 5, Days: 4, Density: 0.6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	min, max, _ := ds.Store.TimeRange()
	// Train on the first half (attacks are injected in the second half).
	mid := min + (max-min)/2
	rule, err := TrainRareChildRule(ds.Store, min, mid, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rule.Pairs() < 5 {
		t.Fatalf("learned only %d pairs", rule.Pairs())
	}
	// The common benign parentage must be among the top pairs.
	top := rule.TopPairs(5)
	found := false
	for _, p := range top {
		if p == "explorer.exe->chrome.exe" || p == "explorer.exe->notepad.exe" ||
			p == "explorer.exe->excel.exe" || p == "explorer.exe->winword.exe" ||
			p == "explorer.exe->outlook.exe" {
			found = true
		}
	}
	if !found {
		t.Errorf("top pairs lack explorer sessions: %v", top)
	}

	// Scan the attack half: the injected attack parentage must be flagged.
	det := NewDetector(rule)
	alerts, err := det.Scan(ds.Store, mid, max+1)
	if err != nil {
		t.Fatal(err)
	}
	flagged := map[string]bool{}
	for _, a := range alerts {
		parent := ds.Store.Object(a.Event.Subject).Exe
		child := ds.Store.Object(a.Event.Object).Exe
		flagged[parent+"->"+child] = true
	}
	for _, want := range []string{
		"excel.exe->java.exe",   // phishing drop
		"sqlservr.exe->cmd.exe", // excel-macro shell
		"httpd->bash",           // shellshock
		"sshd->backdoor.bin",    // cheating student
	} {
		if !flagged[want] {
			t.Errorf("attack parentage %s not flagged", want)
		}
	}

	// Benign parentage that was well represented in training must NOT be
	// flagged (false-positive control).
	if flagged["explorer.exe->chrome.exe"] {
		t.Error("common benign parentage flagged")
	}
}

func TestRareChildRuleMaxSeen(t *testing.T) {
	s := buildStore(t)
	// Train on the whole store: chrome->cmd and sqlservr->cmd each occur
	// once.
	rule, err := TrainRareChildRule(s, 0, 1<<62, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With MaxSeen 0, pairs seen once are not rare.
	startEv := eventAtTime(t, s, 100)
	if _, _, hit := rule.Check(startEv, s); hit {
		t.Error("pair seen once must pass MaxSeen=0 after training on itself")
	}
	// With MaxSeen 1, pairs seen once are flagged at Medium.
	rule.MaxSeen = 1
	msg, sev, hit := rule.Check(startEv, s)
	if !hit || sev != Medium || msg == "" {
		t.Errorf("MaxSeen=1: hit=%v sev=%v", hit, sev)
	}
	// Non-start events never hit.
	writeEv := eventAtTime(t, s, 300)
	if _, _, hit := rule.Check(writeEv, s); hit {
		t.Error("non-start event flagged")
	}
	// Untrained rule never hits.
	var empty RareChildRule
	if _, _, hit := empty.Check(startEv, s); hit {
		t.Error("untrained rule must not hit")
	}
}

func eventAtTime(t *testing.T, s interface {
	Scan(from, to int64, fn func(event.Event) bool) error
}, tm int64) event.Event {
	t.Helper()
	var found event.Event
	s.Scan(tm, tm+1, func(e event.Event) bool { found = e; return false })
	if found.ID == 0 {
		t.Fatalf("no event at t=%d", tm)
	}
	return found
}
