// Package alerts implements the rule-based anomaly detector that supplies
// backtracking analysis with its starting points. The paper treats the
// detector as an existing component of the security stack ("the input of
// backtracking analysis is a system anomaly alert"); this implementation
// covers the alert classes its five attack cases rely on: abnormal child
// processes of server daemons, large uploads to external addresses, and
// integrity violations on protected files.
package alerts

import (
	"fmt"
	"strings"

	"aptrace/internal/event"
	"aptrace/internal/store"
)

// Severity grades an alert.
type Severity uint8

const (
	Low Severity = iota
	Medium
	High
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Low:
		return "low"
	case Medium:
		return "medium"
	default:
		return "high"
	}
}

// Alert is one detector hit: the event to hand to backtracking analysis.
type Alert struct {
	Event    event.Event
	Rule     string
	Severity Severity
	Message  string
}

// Rule inspects one event and reports whether it is anomalous.
type Rule interface {
	// Name identifies the rule in alerts.
	Name() string
	// Check returns a non-empty message and severity if the event trips
	// the rule.
	Check(e event.Event, st *store.Store) (string, Severity, bool)
}

// Detector runs a rule set over a store.
type Detector struct {
	rules []Rule
}

// NewDetector builds a detector; with no arguments it uses DefaultRules.
func NewDetector(rules ...Rule) *Detector {
	if len(rules) == 0 {
		rules = DefaultRules()
	}
	return &Detector{rules: rules}
}

// DefaultRules returns the standard rule set.
func DefaultRules() []Rule {
	return []Rule{
		AbnormalChildRule{
			Daemons: []string{"sqlservr", "httpd", "smbd", "nginx", "postgres"},
			Shells:  []string{"cmd", "bash", "sh", "powershell", "cscript"},
		},
		LargeUploadRule{MinBytes: 10 << 20},
		ProtectedFileRule{Paths: []string{"grades.db", "/etc/shadow", "/etc/sudoers", `\config\SAM`}},
	}
}

// Scan runs every rule over every event in [from, to) and returns the alerts
// in time order. Pass (0, 1<<62) to scan everything.
func (d *Detector) Scan(st *store.Store, from, to int64) ([]Alert, error) {
	return d.ScanAppend(st, from, to, nil)
}

// ScanAppend is Scan with caller-owned storage: alerts are appended to buf
// and the extended buffer is returned, so periodic re-scans can reuse one
// allocation across sweeps.
func (d *Detector) ScanAppend(st *store.Store, from, to int64, buf []Alert) ([]Alert, error) {
	err := st.Scan(from, to, func(e event.Event) bool {
		for _, r := range d.rules {
			if msg, sev, hit := r.Check(e, st); hit {
				buf = append(buf, Alert{Event: e, Rule: r.Name(), Severity: sev, Message: msg})
			}
		}
		return true
	})
	return buf, err
}

// AbnormalChildRule flags server daemons spawning interactive shells —
// the alert that opens attack case A2 ("the anomaly detector raised an alert
// when the SQL server started the cmd.exe").
type AbnormalChildRule struct {
	Daemons []string // substrings of daemon executable names
	Shells  []string // substrings of shell executable names
}

// Name implements Rule.
func (AbnormalChildRule) Name() string { return "abnormal-child" }

// Check implements Rule.
func (r AbnormalChildRule) Check(e event.Event, st *store.Store) (string, Severity, bool) {
	if e.Action != event.ActStart {
		return "", 0, false
	}
	parent := st.Object(e.Subject)
	child := st.Object(e.Object)
	if !matchAny(parent.Exe, r.Daemons) || !matchAny(child.Exe, r.Shells) {
		return "", 0, false
	}
	return fmt.Sprintf("daemon %s spawned shell %s on %s", parent.Exe, child.Exe, parent.Host), High, true
}

// LargeUploadRule flags big transfers to non-private addresses — the
// beaconing/exfiltration alerts of cases A1, A3, and A5.
type LargeUploadRule struct {
	MinBytes int64
}

// Name implements Rule.
func (LargeUploadRule) Name() string { return "large-upload" }

// Check implements Rule.
func (r LargeUploadRule) Check(e event.Event, st *store.Store) (string, Severity, bool) {
	if e.Action != event.ActSend || e.Amount < r.MinBytes {
		return "", 0, false
	}
	sockObj := st.Object(e.Object)
	if sockObj.Type != event.ObjSocket || isPrivate(sockObj.DstIP) {
		return "", 0, false
	}
	sub := st.Object(e.Subject)
	return fmt.Sprintf("%s sent %d MB to external %s", sub.Exe, e.Amount>>20, sockObj.DstIP), High, true
}

// ProtectedFileRule flags writes to integrity-protected files — the alert
// of case A4 (the grade database).
type ProtectedFileRule struct {
	Paths []string // substrings of protected paths
}

// Name implements Rule.
func (ProtectedFileRule) Name() string { return "protected-file" }

// Check implements Rule.
func (r ProtectedFileRule) Check(e event.Event, st *store.Store) (string, Severity, bool) {
	switch e.Action {
	case event.ActWrite, event.ActDelete, event.ActRename, event.ActChmod:
	default:
		return "", 0, false
	}
	obj := st.Object(e.Object)
	if obj.Type != event.ObjFile || !matchAny(obj.Path, r.Paths) {
		return "", 0, false
	}
	sub := st.Object(e.Subject)
	return fmt.Sprintf("%s modified protected file %s on %s", sub.Exe, obj.Path, obj.Host), High, true
}

func matchAny(v string, subs []string) bool {
	lv := strings.ToLower(v)
	for _, s := range subs {
		if strings.Contains(lv, strings.ToLower(s)) {
			return true
		}
	}
	return false
}

// isPrivate reports whether an IPv4 address is in RFC1918 space or loopback;
// everything else counts as external for alerting purposes.
func isPrivate(ip string) bool {
	return strings.HasPrefix(ip, "10.") ||
		strings.HasPrefix(ip, "192.168.") ||
		strings.HasPrefix(ip, "127.") ||
		isPrivate172(ip)
}

func isPrivate172(ip string) bool {
	if !strings.HasPrefix(ip, "172.") {
		return false
	}
	rest := strings.TrimPrefix(ip, "172.")
	dot := strings.IndexByte(rest, '.')
	if dot <= 0 {
		return false
	}
	switch rest[:dot] {
	case "16", "17", "18", "19", "20", "21", "22", "23", "24", "25",
		"26", "27", "28", "29", "30", "31":
		return true
	}
	return false
}
