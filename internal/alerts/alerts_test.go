package alerts

import (
	"testing"

	"aptrace/internal/event"
	"aptrace/internal/store"
	"aptrace/internal/workload"
)

func TestDetectorFindsInjectedAttackAlerts(t *testing.T) {
	ds, err := workload.Generate(workload.Config{Seed: 3, Hosts: 5, Days: 3, Density: 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDetector()
	alerts, err := d.Scan(ds.Store, 0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	found := map[event.EventID]bool{}
	for _, a := range alerts {
		found[a.Event.ID] = true
	}
	for _, atk := range ds.Attacks {
		if !found[atk.AlertID] {
			t.Errorf("attack %s: injected alert event %d not detected", atk.Name, atk.AlertID)
		}
	}
	// Alerts are in time order.
	for i := 1; i < len(alerts); i++ {
		if alerts[i-1].Event.Time > alerts[i].Event.Time {
			t.Fatal("alerts not time ordered")
		}
	}
}

func buildStore(t *testing.T) *store.Store {
	t.Helper()
	s := store.New(nil)
	sql := event.Process("srv", "sqlservr.exe", 9, 0)
	cmd := event.Process("srv", "cmd.exe", 10, 100)
	chrome := event.Process("desk", "chrome.exe", 11, 0)
	svc := event.Process("desk", "svchost.exe", 12, 0)

	s.AddEvent(100, sql, cmd, event.ActStart, event.FlowOut, 0)
	s.AddEvent(150, chrome, cmd, event.ActStart, event.FlowOut, 0) // benign parent
	s.AddEvent(200, chrome, event.Socket("", "10.0.0.1", 1, "8.8.8.8", 443), event.ActSend, event.FlowOut, 50<<20)
	s.AddEvent(250, chrome, event.Socket("", "10.0.0.1", 2, "10.0.0.9", 443), event.ActSend, event.FlowOut, 50<<20)   // internal
	s.AddEvent(260, chrome, event.Socket("", "10.0.0.1", 3, "172.20.1.1", 443), event.ActSend, event.FlowOut, 50<<20) // rfc1918
	s.AddEvent(270, chrome, event.Socket("", "10.0.0.1", 4, "8.8.4.4", 443), event.ActSend, event.FlowOut, 1<<10)     // small
	s.AddEvent(300, svc, event.File("desk", "/etc/shadow"), event.ActWrite, event.FlowOut, 10)
	s.AddEvent(310, svc, event.File("desk", "/etc/shadow"), event.ActRead, event.FlowIn, 10) // reads are fine
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRules(t *testing.T) {
	s := buildStore(t)
	alerts, err := NewDetector().Scan(s, 0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	byRule := map[string][]Alert{}
	for _, a := range alerts {
		byRule[a.Rule] = append(byRule[a.Rule], a)
	}
	if got := byRule["abnormal-child"]; len(got) != 1 || got[0].Event.Time != 100 {
		t.Errorf("abnormal-child = %+v", got)
	}
	if got := byRule["large-upload"]; len(got) != 1 || got[0].Event.Time != 200 {
		t.Errorf("large-upload = %+v", got)
	}
	if got := byRule["protected-file"]; len(got) != 1 || got[0].Event.Time != 300 {
		t.Errorf("protected-file = %+v", got)
	}
	for _, a := range alerts {
		if a.Severity != High || a.Message == "" {
			t.Errorf("alert lacks severity/message: %+v", a)
		}
	}
}

func TestScanRange(t *testing.T) {
	s := buildStore(t)
	alerts, err := NewDetector().Scan(s, 150, 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || alerts[0].Rule != "large-upload" {
		t.Fatalf("ranged scan = %+v", alerts)
	}
}

func TestIsPrivate(t *testing.T) {
	cases := map[string]bool{
		"10.1.2.3":     true,
		"192.168.0.1":  true,
		"127.0.0.1":    true,
		"172.16.0.1":   true,
		"172.31.255.1": true,
		"172.32.0.1":   false,
		"172.15.0.1":   false,
		"172.":         false,
		"8.8.8.8":      false,
		"203.0.113.66": false,
		"198.51.100.9": false,
		"1720.1.1.1":   false,
	}
	for ip, want := range cases {
		if got := isPrivate(ip); got != want {
			t.Errorf("isPrivate(%q) = %v, want %v", ip, got, want)
		}
	}
}

func TestSeverityString(t *testing.T) {
	if Low.String() != "low" || Medium.String() != "medium" || High.String() != "high" {
		t.Fatal("severity names")
	}
}
