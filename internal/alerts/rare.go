package alerts

import (
	"fmt"
	"sort"

	"aptrace/internal/event"
	"aptrace/internal/store"
)

// RareChildRule is a learned rule in the spirit of the anomaly-based pruning
// systems the paper cites (PrioTracker, NoDoze): instead of a hard-coded
// daemon/shell list, it learns the frequency of (parent executable, child
// executable) process-start pairs over a training window and flags starts of
// pairs that were never — or almost never — seen before.
//
// Train it on a historical window that is assumed mostly benign; Check then
// scores events anywhere. This catches what fixed rules cannot (any unusual
// parentage, not just daemons spawning shells) at the cost of needing
// training data — the classic trade the paper discusses in Related Work.
type RareChildRule struct {
	// MaxSeen is the highest training-window occurrence count that still
	// counts as rare. 0 flags only never-seen pairs.
	MaxSeen int

	counts map[startPair]int
	total  int
}

type startPair struct {
	parent, child string
}

// TrainRareChildRule learns pair frequencies from st over [from, to).
func TrainRareChildRule(st *store.Store, from, to int64, maxSeen int) (*RareChildRule, error) {
	r := &RareChildRule{MaxSeen: maxSeen, counts: make(map[startPair]int)}
	err := st.Scan(from, to, func(e event.Event) bool {
		if e.Action != event.ActStart {
			return true
		}
		p := startPair{st.Object(e.Subject).Exe, st.Object(e.Object).Exe}
		r.counts[p]++
		r.total++
		return true
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Name implements Rule.
func (*RareChildRule) Name() string { return "rare-child" }

// Check implements Rule: a process start whose (parent, child) pair occurred
// at most MaxSeen times in training is anomalous.
func (r *RareChildRule) Check(e event.Event, st *store.Store) (string, Severity, bool) {
	if e.Action != event.ActStart || r.counts == nil {
		return "", 0, false
	}
	p := startPair{st.Object(e.Subject).Exe, st.Object(e.Object).Exe}
	seen := r.counts[p]
	if seen > r.MaxSeen {
		return "", 0, false
	}
	sev := Medium
	if seen == 0 {
		sev = High
	}
	return fmt.Sprintf("unusual process parentage: %s started %s (seen %d times in training)",
		p.parent, p.child, seen), sev, true
}

// Pairs returns the number of distinct pairs learned, for diagnostics.
func (r *RareChildRule) Pairs() int { return len(r.counts) }

// TopPairs returns the n most frequent learned pairs formatted as
// "parent->child", for inspection and tests.
func (r *RareChildRule) TopPairs(n int) []string {
	type pc struct {
		p startPair
		c int
	}
	all := make([]pc, 0, len(r.counts))
	for p, c := range r.counts {
		all = append(all, pc{p, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		if all[i].p.parent != all[j].p.parent {
			return all[i].p.parent < all[j].p.parent
		}
		return all[i].p.child < all[j].p.child
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, 0, n)
	for _, e := range all[:n] {
		out = append(out, fmt.Sprintf("%s->%s", e.p.parent, e.p.child))
	}
	return out
}
