package audit

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"aptrace/internal/event"
)

// Linux-Audit-style format: a single line of key=value pairs with the
// characteristic msg=audit(EPOCH.MS:SERIAL) prefix. String values are
// double-quoted like auditd renders comm= and exe=.
//
//	type=APTRACE msg=audit(1555395314.000:42): action=read dir=in amount=4096
//	  host="web1" exe="bash" pid=901 start=1555390000
//	  obj=file obj_host="web1" path="/etc/passwd"

// quoteAuditd renders a string value the way auditd does: double-quoted
// verbatim when safe, upper-case hex without quotes when the value contains
// a quote or control bytes (auditd's "untrusted string" encoding).
func quoteAuditd(s string) string {
	clean := !strings.ContainsAny(s, "\"\n\r\t")
	if clean {
		return `"` + s + `"`
	}
	return strings.ToUpper(hex.EncodeToString([]byte(s)))
}

// unquoteAuditd is the inverse: quoted values are verbatim, unquoted ones
// are hex-decoded.
func unquoteAuditd(raw string) string {
	if strings.HasPrefix(raw, `"`) && strings.HasSuffix(raw, `"`) && len(raw) >= 2 {
		return raw[1 : len(raw)-1]
	}
	if b, err := hex.DecodeString(strings.ToLower(raw)); err == nil && len(raw) > 0 && len(raw)%2 == 0 {
		return string(b)
	}
	return raw
}

func encodeAuditd(r Record) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "type=APTRACE msg=audit(%d.000:0): action=%s dir=%s amount=%d",
		r.Time, r.Action, r.Dir, r.Amount)
	fmt.Fprintf(&sb, " host=%s exe=%s pid=%d start=%d",
		quoteAuditd(r.Subject.Host), quoteAuditd(r.Subject.Exe), r.Subject.PID, r.Subject.Start)
	switch r.Object.Type {
	case event.ObjProcess:
		fmt.Fprintf(&sb, " obj=proc obj_host=%s obj_exe=%s obj_pid=%d obj_start=%d",
			quoteAuditd(r.Object.Host), quoteAuditd(r.Object.Exe), r.Object.PID, r.Object.Start)
	case event.ObjFile:
		fmt.Fprintf(&sb, " obj=file obj_host=%s path=%s", quoteAuditd(r.Object.Host), quoteAuditd(r.Object.Path))
	case event.ObjSocket:
		fmt.Fprintf(&sb, " obj=ip obj_host=%s saddr=%s sport=%d daddr=%s dport=%d",
			quoteAuditd(r.Object.Host), quoteAuditd(r.Object.SrcIP), r.Object.SrcPort,
			quoteAuditd(r.Object.DstIP), r.Object.DstPort)
	default:
		return "", fmt.Errorf("audit: auditd: invalid object type %d", r.Object.Type)
	}
	return sb.String(), nil
}

// auditdFields tokenizes a key=value line honoring double quotes.
func auditdFields(line string) (map[string]string, error) {
	out := make(map[string]string)
	i := 0
	n := len(line)
	for i < n {
		for i < n && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= n {
			break
		}
		eq := strings.IndexByte(line[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("audit: auditd: stray token at byte %d", i)
		}
		key := line[i : i+eq]
		i += eq + 1
		var val string
		if i < n && line[i] == '"' {
			end := strings.IndexByte(line[i+1:], '"')
			if end < 0 {
				return nil, fmt.Errorf("audit: auditd: unterminated quote for %q", key)
			}
			val = line[i : i+end+2] // keep the quotes; unquoteAuditd strips them
			i += end + 2
		} else {
			end := strings.IndexByte(line[i:], ' ')
			if end < 0 {
				end = n - i
			}
			val = line[i : i+end]
			i += end
		}
		out[key] = val
	}
	return out, nil
}

func parseAuditd(line string) (Record, error) {
	fields, err := auditdFields(line)
	if err != nil {
		return Record{}, err
	}
	msg, ok := fields["msg"]
	if !ok || !strings.HasPrefix(msg, "audit(") {
		return Record{}, fmt.Errorf("audit: auditd: missing msg=audit(...) header")
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(msg, "audit("), ":")
	if i := strings.IndexByte(inner, ':'); i >= 0 {
		inner = inner[:i]
	}
	inner = strings.TrimSuffix(inner, ")")
	secs := inner
	if i := strings.IndexByte(inner, '.'); i >= 0 {
		secs = inner[:i]
	}
	ts, err := strconv.ParseInt(secs, 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("audit: auditd: bad timestamp %q", msg)
	}

	num := func(key string, bits int) (int64, error) {
		v, ok := fields[key]
		if !ok {
			return 0, nil
		}
		n, err := strconv.ParseInt(v, 10, bits)
		if err != nil {
			return 0, fmt.Errorf("audit: auditd: field %s=%q is not numeric", key, v)
		}
		return n, nil
	}

	act, ok := event.ParseAction(fields["action"])
	if !ok {
		return Record{}, fmt.Errorf("audit: auditd: unknown action %q", fields["action"])
	}
	var dir event.Direction
	switch fields["dir"] {
	case "out":
		dir = event.FlowOut
	case "in":
		dir = event.FlowIn
	default:
		return Record{}, fmt.Errorf("audit: auditd: bad direction %q", fields["dir"])
	}
	amount, err := num("amount", 64)
	if err != nil {
		return Record{}, err
	}
	pid, err := num("pid", 32)
	if err != nil {
		return Record{}, err
	}
	start, err := num("start", 64)
	if err != nil {
		return Record{}, err
	}
	r := Record{
		Time:    ts,
		Action:  act,
		Dir:     dir,
		Amount:  amount,
		Subject: event.Process(unquoteAuditd(fields["host"]), unquoteAuditd(fields["exe"]), int32(pid), start),
	}
	switch fields["obj"] {
	case "proc":
		opid, err := num("obj_pid", 32)
		if err != nil {
			return Record{}, err
		}
		ostart, err := num("obj_start", 64)
		if err != nil {
			return Record{}, err
		}
		r.Object = event.Process(unquoteAuditd(fields["obj_host"]), unquoteAuditd(fields["obj_exe"]), int32(opid), ostart)
	case "file":
		r.Object = event.File(unquoteAuditd(fields["obj_host"]), unquoteAuditd(fields["path"]))
	case "ip":
		sport, err := num("sport", 32)
		if err != nil {
			return Record{}, err
		}
		dport, err := num("dport", 32)
		if err != nil {
			return Record{}, err
		}
		r.Object = event.Socket(unquoteAuditd(fields["obj_host"]), unquoteAuditd(fields["saddr"]), uint16(sport), unquoteAuditd(fields["daddr"]), uint16(dport))
	default:
		return Record{}, fmt.Errorf("audit: auditd: unknown object type %q", fields["obj"])
	}
	return r, nil
}
