// Package audit implements the collection-side record formats APTrace's
// deployment ingests: an ETW-style XML event format (Windows hosts) and a
// Linux-Audit-style key=value format. The paper's system consumed both
// (Section IV-A: "We collected system events with Windows ETW and Linux
// Audit messages"); this package provides encoders, parsers, and a stream
// ingester that normalizes either format into store events, so the full
// collect -> parse -> normalize -> store path is exercised without OS hooks.
package audit

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"

	"aptrace/internal/event"
	"aptrace/internal/store"
	"aptrace/internal/telemetry"
)

// Record is one normalized audit record, the common denominator of both
// wire formats.
type Record struct {
	Time    int64 // Unix seconds
	Action  event.Action
	Dir     event.Direction
	Amount  int64
	Subject event.Object // always a process
	Object  event.Object
}

// cleanString reports whether s can be carried faithfully by both wire
// formats: valid UTF-8 with no control characters. Real collectors hex-arm
// such names; this normalizer rejects them instead of corrupting them.
func cleanString(s string) bool {
	if !utf8.ValidString(s) {
		return false
	}
	for _, r := range s {
		if r < 0x20 || r == 0x7f {
			return false
		}
	}
	return true
}

// maxRecordTime is 9999-12-31T23:59:59Z, the last instant RFC 3339 (and
// hence the ETW-style wire format) can carry with a four-digit year.
const maxRecordTime = 253402300799

// Validate checks the structural invariants a record must satisfy before
// ingestion.
func (r Record) Validate() error {
	if r.Time <= 0 || r.Time > maxRecordTime {
		return fmt.Errorf("audit: timestamp %d outside the representable range", r.Time)
	}
	for _, s := range []string{
		r.Subject.Host, r.Subject.Exe,
		r.Object.Host, r.Object.Exe, r.Object.Path,
		r.Object.SrcIP, r.Object.DstIP,
	} {
		if !cleanString(s) {
			return fmt.Errorf("audit: string field contains control bytes or invalid UTF-8")
		}
	}
	if r.Subject.Type != event.ObjProcess {
		return fmt.Errorf("audit: subject must be a process, got %v", r.Subject.Type)
	}
	if r.Subject.Exe == "" {
		return fmt.Errorf("audit: subject has no executable name")
	}
	if r.Action == event.ActUnknown {
		return fmt.Errorf("audit: unknown action")
	}
	switch r.Object.Type {
	case event.ObjProcess:
		if r.Object.Exe == "" {
			return fmt.Errorf("audit: process object has no executable name")
		}
	case event.ObjFile:
		if r.Object.Path == "" {
			return fmt.Errorf("audit: file object has no path")
		}
	case event.ObjSocket:
		if r.Object.DstIP == "" {
			return fmt.Errorf("audit: socket object has no destination")
		}
	default:
		return fmt.Errorf("audit: invalid object type %d", r.Object.Type)
	}
	return nil
}

// Event converts the record to a store-ready event pair (subject, object,
// attributes). The store assigns the EventID.
func (r Record) add(st *store.Store) (event.EventID, error) {
	return st.AddEvent(r.Time, r.Subject, r.Object, r.Action, r.Dir, r.Amount)
}

// Format identifies an audit wire format.
type Format uint8

const (
	// FormatETW is the Windows ETW-style XML line format.
	FormatETW Format = iota
	// FormatAuditd is the Linux Audit style key=value line format.
	FormatAuditd
)

// Encode writes r to w in the given format, one line per record.
func Encode(w io.Writer, r Record, f Format) error {
	var line string
	var err error
	switch f {
	case FormatETW:
		line, err = encodeETW(r)
	case FormatAuditd:
		line, err = encodeAuditd(r)
	default:
		return fmt.Errorf("audit: unknown format %d", f)
	}
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, line+"\n")
	return err
}

// DecodeError is the typed error every undecodable audit line surfaces:
// which wire format the parser attempted, the underlying reason, and a
// bounded excerpt of the offending line. Garbage on the wire must never
// panic the collection pipeline; it becomes one of these (and a tick of
// the aptrace_ingest_decode_errors_total counter) instead.
type DecodeError struct {
	Format string // "etw", "auditd", or "" when no format was recognized
	Line   string // offending line, truncated to maxDecodeErrorExcerpt
	Err    error  // parser-level cause; nil for empty/unrecognized lines
}

// maxDecodeErrorExcerpt bounds how much of a garbage line a DecodeError
// carries, so a multi-megabyte binary blob cannot balloon error messages.
const maxDecodeErrorExcerpt = 80

// Error implements error.
func (e *DecodeError) Error() string {
	format := e.Format
	if format == "" {
		format = "unrecognized format"
	}
	if e.Err != nil {
		return fmt.Sprintf("audit: decode (%s): %v", format, e.Err)
	}
	return fmt.Sprintf("audit: decode (%s): %.*q", format, maxDecodeErrorExcerpt, e.Line)
}

// Unwrap exposes the parser-level cause to errors.Is/As.
func (e *DecodeError) Unwrap() error { return e.Err }

// decodeError builds the typed error with a bounded line excerpt.
func decodeError(format, line string, err error) *DecodeError {
	if len(line) > maxDecodeErrorExcerpt {
		line = line[:maxDecodeErrorExcerpt]
	}
	return &DecodeError{Format: format, Line: line, Err: err}
}

// ParseLine parses one line in either format, auto-detected: ETW lines start
// with '<', auditd lines with "type=". Every failure is a *DecodeError.
func ParseLine(line string) (Record, error) {
	trimmed := strings.TrimSpace(line)
	switch {
	case trimmed == "":
		return Record{}, decodeError("", "(empty line)", nil)
	case strings.HasPrefix(trimmed, "<"):
		rec, err := parseETW(trimmed)
		if err != nil {
			return Record{}, decodeError("etw", trimmed, err)
		}
		return rec, nil
	case strings.HasPrefix(trimmed, "type="):
		rec, err := parseAuditd(trimmed)
		if err != nil {
			return Record{}, decodeError("auditd", trimmed, err)
		}
		return rec, nil
	default:
		return Record{}, decodeError("", trimmed, nil)
	}
}

// IngestStats reports what an Ingest pass did.
type IngestStats struct {
	Lines    int `json:"lines"`    // lines read (excluding blanks)
	Ingested int `json:"ingested"` // records stored
	Rejected int `json:"rejected"` // lines that failed to parse or validate
	// Decode and Invalid split Rejected by failure stage: lines the wire
	// parsers could not decode vs records that decoded but failed
	// structural validation.
	Decode  int `json:"decode_errors"`
	Invalid int `json:"invalid_records"`
}

// ingestCounters caches the telemetry instruments one ingest pass ticks.
// A nil registry yields nil instruments, which are free no-ops.
type ingestCounters struct {
	records *telemetry.Counter
	decode  *telemetry.Counter
	invalid *telemetry.Counter
}

func newIngestCounters(reg *telemetry.Registry) ingestCounters {
	return ingestCounters{
		records: reg.Counter(telemetry.MetricIngestRecords),
		decode:  reg.Counter(telemetry.MetricIngestDecodeErrors),
		invalid: reg.Counter(telemetry.MetricIngestInvalid),
	}
}

// ingestLine classifies and stores one non-empty line; add persists the
// decoded record. Malformed lines are counted, not fatal; only add errors
// (sealed store and the like — caller bugs) abort.
func (c ingestCounters) ingestLine(line string, stats *IngestStats, add func(Record) error) error {
	stats.Lines++
	rec, err := ParseLine(line)
	if err != nil {
		stats.Rejected++
		stats.Decode++
		c.decode.Inc()
		return nil
	}
	if err := rec.Validate(); err != nil {
		stats.Rejected++
		stats.Invalid++
		c.invalid.Inc()
		return nil
	}
	if err := add(rec); err != nil {
		return err
	}
	stats.Ingested++
	c.records.Inc()
	return nil
}

// ingest is the shared scanning loop behind Ingest and IngestLive.
func ingest(r io.Reader, reg *telemetry.Registry, add func(Record) error) (IngestStats, error) {
	var stats IngestStats
	counters := newIngestCounters(reg)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if err := counters.ingestLine(line, &stats, add); err != nil {
			return stats, err
		}
	}
	return stats, sc.Err()
}

// Ingest reads newline-delimited audit records from r (formats may be
// mixed), validates them, and appends them to the store. Malformed lines
// are counted and skipped rather than aborting the stream — collection
// pipelines drop garbage, they do not stop. The store must not be sealed.
func Ingest(st *store.Store, r io.Reader) (IngestStats, error) {
	return ingest(r, st.Telemetry(), func(rec Record) error {
		_, err := rec.add(st)
		return err
	})
}

// IngestLive streams newline-delimited audit records into a live store,
// appending each valid record durably (WAL) as it arrives — the collection
// pipeline of a deployed system. Malformed lines are counted and skipped.
func IngestLive(l *store.Live, r io.Reader) (IngestStats, error) {
	return ingest(r, l.Telemetry(), func(rec Record) error {
		_, err := l.Append(rec.Time, rec.Subject, rec.Object, rec.Action, rec.Dir, rec.Amount)
		return err
	})
}

// IngestLiveLine ingests a single already-framed line into the live store —
// the per-line form of IngestLive used by file-tailing collectors that frame
// lines themselves. Blank lines are ignored. The returned stats describe
// just this line; malformed input is reported in the stats (and telemetry),
// not as an error.
func IngestLiveLine(l *store.Live, line string) (IngestStats, error) {
	var stats IngestStats
	line = strings.TrimSpace(line)
	if line == "" {
		return stats, nil
	}
	err := newIngestCounters(l.Telemetry()).ingestLine(line, &stats, func(rec Record) error {
		_, err := l.Append(rec.Time, rec.Subject, rec.Object, rec.Action, rec.Dir, rec.Amount)
		return err
	})
	return stats, err
}

// Export writes every event of a sealed store to w in the given format,
// in time order. It is the inverse of Ingest up to event IDs.
func Export(st *store.Store, w io.Writer, f Format) (int, error) {
	n := 0
	var encErr error
	min, max, ok := st.TimeRange()
	if !ok {
		return 0, nil
	}
	err := st.Scan(min, max+1, func(e event.Event) bool {
		rec := Record{
			Time:    e.Time,
			Action:  e.Action,
			Dir:     e.Dir,
			Amount:  e.Amount,
			Subject: st.Object(e.Subject),
			Object:  st.Object(e.Object),
		}
		if encErr = Encode(w, rec, f); encErr != nil {
			return false
		}
		n++
		return true
	})
	if err != nil {
		return n, err
	}
	return n, encErr
}
