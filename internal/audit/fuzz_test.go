package audit

import (
	"errors"
	"strings"
	"testing"
)

// FuzzParseLine fuzzes both wire-format parsers through the auto-detecting
// entry point. Records that parse must survive an encode/parse round trip.
func FuzzParseLine(f *testing.F) {
	for _, r := range sampleRecords() {
		for _, format := range []Format{FormatETW, FormatAuditd} {
			line, err := func() (string, error) {
				if format == FormatETW {
					return encodeETW(r)
				}
				return encodeAuditd(r)
			}()
			if err == nil {
				f.Add(line)
			}
		}
	}
	f.Add("type=APTRACE msg=audit(1.000:0): action=read dir=in")
	f.Add("<Event/>")
	// Error-path seeds: one per DecodeError branch, so the corpus walks the
	// failure classification (unrecognized, ETW parse, auditd parse) and
	// the excerpt-bounding code, not just the happy round trip.
	f.Add("")
	f.Add("   \t  ")
	f.Add("no recognizable prefix at all")
	f.Add("<Event notxml")
	f.Add(`<Event Time="bogus" Action="read" Dir="in" ObjType="file" Path="/x"/>`)
	f.Add(`<Event Time="2019-04-16T06:15:14Z" Action="frob" Dir="in" ObjType="file" Path="/x"/>`)
	f.Add(`type=APTRACE action=read dir=in obj=file path="/x"`)
	f.Add(`type=APTRACE msg=audit(notanumber:0): action=read dir=in obj=file path="/x"`)
	f.Add(`type=APTRACE msg=audit(5.000:0): action=read dir=in obj=file path="unterminated`)
	f.Add(`type=APTRACE msg=audit(5.000:0): action=read dir=in obj=blob`)
	f.Add("<" + strings.Repeat("A", 4096))
	f.Add("type=" + strings.Repeat("B", 4096))
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseLine(line)
		if err != nil {
			// Every failure must be the typed error with a bounded excerpt.
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("ParseLine error is %T, want *DecodeError", err)
			}
			if len(de.Line) > maxDecodeErrorExcerpt {
				t.Fatalf("excerpt length %d exceeds bound", len(de.Line))
			}
			return
		}
		if rec.Validate() != nil {
			return
		}
		for _, format := range []Format{FormatETW, FormatAuditd} {
			enc, err := func() (string, error) {
				if format == FormatETW {
					return encodeETW(rec)
				}
				return encodeAuditd(rec)
			}()
			if err != nil {
				t.Fatalf("valid record failed to encode (format %d): %v", format, err)
			}
			again, err := ParseLine(enc)
			if err != nil {
				t.Fatalf("re-encoded record failed to parse: %v\n%s", err, enc)
			}
			if again != rec {
				t.Fatalf("round trip changed record:\n%+v\n%+v", rec, again)
			}
		}
	})
}
