package audit

import "testing"

// FuzzParseLine fuzzes both wire-format parsers through the auto-detecting
// entry point. Records that parse must survive an encode/parse round trip.
func FuzzParseLine(f *testing.F) {
	for _, r := range sampleRecords() {
		for _, format := range []Format{FormatETW, FormatAuditd} {
			line, err := func() (string, error) {
				if format == FormatETW {
					return encodeETW(r)
				}
				return encodeAuditd(r)
			}()
			if err == nil {
				f.Add(line)
			}
		}
	}
	f.Add("type=APTRACE msg=audit(1.000:0): action=read dir=in")
	f.Add("<Event/>")
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseLine(line)
		if err != nil {
			return
		}
		if rec.Validate() != nil {
			return
		}
		for _, format := range []Format{FormatETW, FormatAuditd} {
			enc, err := func() (string, error) {
				if format == FormatETW {
					return encodeETW(rec)
				}
				return encodeAuditd(rec)
			}()
			if err != nil {
				t.Fatalf("valid record failed to encode (format %d): %v", format, err)
			}
			again, err := ParseLine(enc)
			if err != nil {
				t.Fatalf("re-encoded record failed to parse: %v\n%s", err, enc)
			}
			if again != rec {
				t.Fatalf("round trip changed record:\n%+v\n%+v", rec, again)
			}
		}
	})
}
