package audit

import (
	"errors"
	"strings"
	"testing"

	"aptrace/internal/store"
	"aptrace/internal/telemetry"
)

// TestDecodeErrorTyped pins the typed-error contract: every parse failure
// is a *DecodeError carrying the attempted format and a bounded excerpt.
func TestDecodeErrorTyped(t *testing.T) {
	cases := []struct {
		name   string
		line   string
		format string
	}{
		{"empty", "", ""},
		{"whitespace only", "   \t  ", ""},
		{"unrecognized prefix", "garbage line", ""},
		{"etw not xml", "<Event notxml", "etw"},
		{"etw bad time", `<Event Time="bogus" Action="read" Dir="in" ObjType="file" Path="/x"/>`, "etw"},
		{"etw bad action", `<Event Time="2019-04-16T06:15:14Z" Action="frob" Dir="in" ObjType="file" Path="/x"/>`, "etw"},
		{"etw bad direction", `<Event Time="2019-04-16T06:15:14Z" Action="read" Dir="sideways" ObjType="file" Path="/x"/>`, "etw"},
		{"etw bad object type", `<Event Time="2019-04-16T06:15:14Z" Action="read" Dir="in" ObjType="widget"/>`, "etw"},
		{"auditd missing msg", `type=APTRACE action=read dir=in obj=file path="/x"`, "auditd"},
		{"auditd bad timestamp", `type=APTRACE msg=audit(notanumber:0): action=read dir=in obj=file path="/x"`, "auditd"},
		{"auditd bad pid", `type=APTRACE msg=audit(5.000:0): action=read dir=in obj=file path="/x" pid=xyz`, "auditd"},
		{"auditd bad object", `type=APTRACE msg=audit(5.000:0): action=read dir=in obj=blob`, "auditd"},
		{"auditd unterminated quote", `type=APTRACE msg=audit(5.000:0): action=read dir=in obj=file path="unterminated`, "auditd"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseLine(tc.line)
			if err == nil {
				t.Fatalf("ParseLine(%q) must fail", tc.line)
			}
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("error is %T, want *DecodeError", err)
			}
			if de.Format != tc.format {
				t.Fatalf("Format = %q, want %q", de.Format, tc.format)
			}
			if len(de.Line) > maxDecodeErrorExcerpt {
				t.Fatalf("excerpt length %d exceeds bound %d", len(de.Line), maxDecodeErrorExcerpt)
			}
			if de.Error() == "" || !strings.HasPrefix(de.Error(), "audit: decode") {
				t.Fatalf("Error() = %q", de.Error())
			}
			// Unwrap exposes the parser cause when one exists; either way
			// errors.Is through the chain must terminate without panicking.
			if de.Err != nil && !errors.Is(err, de.Err) {
				t.Fatal("Unwrap does not expose the cause")
			}
		})
	}
}

// TestDecodeErrorExcerptBounded feeds a multi-megabyte garbage line and
// checks the error stays small.
func TestDecodeErrorExcerptBounded(t *testing.T) {
	huge := strings.Repeat("x", 4<<20)
	_, err := ParseLine(huge)
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("error is %T", err)
	}
	if len(de.Line) != maxDecodeErrorExcerpt {
		t.Fatalf("excerpt length = %d, want %d", len(de.Line), maxDecodeErrorExcerpt)
	}
	if len(de.Error()) > 4*maxDecodeErrorExcerpt {
		t.Fatalf("Error() ballooned to %d bytes", len(de.Error()))
	}
}

// TestIngestDecodeCounters checks the rejected-line split (decode vs
// validation) in both the stats and the telemetry counters.
func TestIngestDecodeCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	st := store.New(nil, store.WithTelemetry(reg))

	var input strings.Builder
	input.WriteString("complete garbage\n")
	input.WriteString("<Event notxml\n")
	// Decodes but fails validation (Time = 0).
	input.WriteString(`type=APTRACE msg=audit(0.000:0): action=read dir=in obj=file path="/x" exe="a" host="h"` + "\n")
	// One valid record.
	if err := Encode(&input, sampleRecords()[0], FormatAuditd); err != nil {
		t.Fatal(err)
	}

	stats, err := Ingest(st, strings.NewReader(input.String()))
	if err != nil {
		t.Fatal(err)
	}
	want := IngestStats{Lines: 4, Ingested: 1, Rejected: 3, Decode: 2, Invalid: 1}
	if stats != want {
		t.Fatalf("stats = %+v, want %+v", stats, want)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[telemetry.MetricIngestDecodeErrors]; got != 2 {
		t.Fatalf("%s = %d, want 2", telemetry.MetricIngestDecodeErrors, got)
	}
	if got := snap.Counters[telemetry.MetricIngestInvalid]; got != 1 {
		t.Fatalf("%s = %d, want 1", telemetry.MetricIngestInvalid, got)
	}
	if got := snap.Counters[telemetry.MetricIngestRecords]; got != 1 {
		t.Fatalf("%s = %d, want 1", telemetry.MetricIngestRecords, got)
	}
}

// TestIngestLiveLine covers the per-line tail-collector entry point: blank
// lines vanish, garbage is counted (never fatal), valid lines append
// durably, and the live store's registry sees every tick.
func TestIngestLiveLine(t *testing.T) {
	reg := telemetry.NewRegistry()
	l, err := store.OpenLive(t.TempDir(), nil, store.WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	stats, err := IngestLiveLine(l, "   \n")
	if err != nil || stats != (IngestStats{}) {
		t.Fatalf("blank line = %+v, %v", stats, err)
	}

	stats, err = IngestLiveLine(l, "not an audit line")
	if err != nil {
		t.Fatalf("garbage must not be fatal: %v", err)
	}
	if stats.Decode != 1 || stats.Rejected != 1 || stats.Ingested != 0 {
		t.Fatalf("garbage stats = %+v", stats)
	}

	var buf strings.Builder
	if err := Encode(&buf, sampleRecords()[0], FormatETW); err != nil {
		t.Fatal(err)
	}
	stats, err = IngestLiveLine(l, buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ingested != 1 {
		t.Fatalf("valid line stats = %+v", stats)
	}
	if l.PendingEvents()+l.BaseEvents() != 1 {
		t.Fatalf("live store holds %d events", l.PendingEvents()+l.BaseEvents())
	}
	snap := reg.Snapshot()
	if got := snap.Counters[telemetry.MetricIngestRecords]; got != 1 {
		t.Fatalf("records counter = %d", got)
	}
	if got := snap.Counters[telemetry.MetricIngestDecodeErrors]; got != 1 {
		t.Fatalf("decode counter = %d", got)
	}
}
