package audit

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"aptrace/internal/event"
	"aptrace/internal/store"
)

func sampleRecords() []Record {
	return []Record{
		{
			Time: 1_555_395_314, Action: event.ActWrite, Dir: event.FlowOut, Amount: 512,
			Subject: event.Process("desktop1", "excel.exe", 412, 1_555_000_000),
			Object:  event.File("desktop1", `C:\Users\u\Documents\java.exe`),
		},
		{
			Time: 1_555_395_320, Action: event.ActStart, Dir: event.FlowOut,
			Subject: event.Process("desktop1", "excel.exe", 412, 1_555_000_000),
			Object:  event.Process("desktop1", "java.exe", 500, 1_555_395_320),
		},
		{
			Time: 1_555_395_400, Action: event.ActSend, Dir: event.FlowOut, Amount: 40 << 20,
			Subject: event.Process("desktop1", "java.exe", 500, 1_555_395_320),
			Object:  event.Socket("", "10.1.0.7", 49900, "203.0.113.66", 443),
		},
		{
			Time: 1_555_395_200, Action: event.ActRead, Dir: event.FlowIn, Amount: 4096,
			Subject: event.Process("web1", "bash", 901, 1_555_390_000),
			Object:  event.File("web1", "/etc/passwd with spaces"),
		},
	}
}

func TestRoundTripBothFormats(t *testing.T) {
	for _, f := range []Format{FormatETW, FormatAuditd} {
		for i, r := range sampleRecords() {
			var buf bytes.Buffer
			if err := Encode(&buf, r, f); err != nil {
				t.Fatalf("format %d record %d: %v", f, i, err)
			}
			got, err := ParseLine(buf.String())
			if err != nil {
				t.Fatalf("format %d record %d parse: %v\n%s", f, i, err, buf.String())
			}
			if got != r {
				t.Fatalf("format %d record %d round trip:\n got %+v\nwant %+v", f, i, got, r)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	good := sampleRecords()[0]
	if err := good.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	cases := []func(*Record){
		func(r *Record) { r.Time = 0 },
		func(r *Record) { r.Subject = event.File("h", "/x") },
		func(r *Record) { r.Subject.Exe = "" },
		func(r *Record) { r.Action = event.ActUnknown },
		func(r *Record) { r.Object = event.File("h", "") },
		func(r *Record) { r.Object = event.Process("h", "", 0, 0) },
		func(r *Record) { r.Object = event.Socket("h", "1.2.3.4", 1, "", 2) },
	}
	for i, mutate := range cases {
		r := good
		mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("mutation %d must be rejected", i)
		}
	}
}

func TestParseLineErrors(t *testing.T) {
	bad := []string{
		"",
		"garbage line",
		"<Event notxml",
		`<Event Time="bogus" Action="read" Dir="in" ObjType="file" Path="/x"/>`,
		`<Event Time="2019-04-16T06:15:14Z" Action="frob" Dir="in" ObjType="file" Path="/x"/>`,
		`<Event Time="2019-04-16T06:15:14Z" Action="read" Dir="sideways" ObjType="file" Path="/x"/>`,
		`<Event Time="2019-04-16T06:15:14Z" Action="read" Dir="in" ObjType="widget"/>`,
		`type=APTRACE action=read dir=in obj=file path="/x"`, // missing msg
		`type=APTRACE msg=audit(notanumber:0): action=read dir=in obj=file path="/x"`,
		`type=APTRACE msg=audit(5.000:0): action=read dir=in obj=file path="/x" pid=xyz`,
		`type=APTRACE msg=audit(5.000:0): action=read dir=in obj=blob`,
		`type=APTRACE msg=audit(5.000:0): action=read dir=in obj=file path="unterminated`,
	}
	for _, line := range bad {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("ParseLine(%q) must fail", line)
		}
	}
}

func TestIngestMixedFormats(t *testing.T) {
	var buf bytes.Buffer
	recs := sampleRecords()
	for i, r := range recs {
		f := FormatETW
		if i%2 == 1 {
			f = FormatAuditd
		}
		if err := Encode(&buf, r, f); err != nil {
			t.Fatal(err)
		}
	}
	buf.WriteString("\n??? this line is garbage ???\n")
	buf.WriteString(`type=APTRACE msg=audit(0.000:0): action=read dir=in obj=file path="/x" exe="a" host="h"` + "\n") // Time=0: fails validation

	st := store.New(nil)
	stats, err := Ingest(st, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ingested != len(recs) {
		t.Fatalf("ingested %d, want %d (stats %+v)", stats.Ingested, len(recs), stats)
	}
	if stats.Rejected != 2 {
		t.Fatalf("rejected %d, want 2", stats.Rejected)
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	if st.NumEvents() != len(recs) {
		t.Fatalf("store has %d events", st.NumEvents())
	}
	// Events are queryable: the java.exe write target exists.
	if _, ok := st.Lookup(event.File("desktop1", `C:\Users\u\Documents\java.exe`)); !ok {
		t.Fatal("ingested object missing")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	src := store.New(nil)
	for _, r := range sampleRecords() {
		if _, err := src.AddEvent(r.Time, r.Subject, r.Object, r.Action, r.Dir, r.Amount); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Seal(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []Format{FormatETW, FormatAuditd} {
		var buf bytes.Buffer
		n, err := Export(src, &buf, f)
		if err != nil || n != src.NumEvents() {
			t.Fatalf("export: n=%d err=%v", n, err)
		}
		dst := store.New(nil)
		stats, err := Ingest(dst, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Ingested != n || stats.Rejected != 0 {
			t.Fatalf("reimport stats %+v", stats)
		}
		dst.Seal()
		// Same objects, same event count.
		if dst.NumObjects() != src.NumObjects() || dst.NumEvents() != src.NumEvents() {
			t.Fatalf("round trip mismatch: %d/%d vs %d/%d",
				dst.NumEvents(), dst.NumObjects(), src.NumEvents(), src.NumObjects())
		}
	}
}

func TestExportEmptyStore(t *testing.T) {
	st := store.New(nil)
	st.Seal()
	var buf bytes.Buffer
	n, err := Export(st, &buf, FormatETW)
	if err != nil || n != 0 || buf.Len() != 0 {
		t.Fatalf("empty export: n=%d err=%v len=%d", n, err, buf.Len())
	}
}

// Fuzz-ish: random mutations of valid lines must never panic the parsers.
func TestParserRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var lines []string
	for _, r := range sampleRecords() {
		for _, f := range []Format{FormatETW, FormatAuditd} {
			var buf bytes.Buffer
			Encode(&buf, r, f)
			lines = append(lines, strings.TrimSpace(buf.String()))
		}
	}
	for i := 0; i < 3000; i++ {
		line := []byte(lines[rng.Intn(len(lines))])
		for m := 0; m < 1+rng.Intn(4); m++ {
			switch rng.Intn(3) {
			case 0: // flip a byte
				line[rng.Intn(len(line))] = byte(rng.Intn(256))
			case 1: // truncate
				line = line[:rng.Intn(len(line))+1]
			case 2: // duplicate a chunk
				p := rng.Intn(len(line))
				line = append(line[:p:p], line[p/2:]...)
			}
			if len(line) == 0 {
				line = []byte("x")
			}
		}
		ParseLine(string(line)) // must not panic
	}
}
