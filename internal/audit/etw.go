package audit

import (
	"encoding/xml"
	"fmt"
	"time"

	"aptrace/internal/event"
)

// ETW-style format: one self-closing XML element per line, attribute names
// modeled on the rendered form of ETW kernel provider events.
//
//	<Event Time="2019-04-16T06:15:14Z" Action="write" Dir="out" Amount="512"
//	       SubjectHost="desktop1" SubjectExe="excel.exe" SubjectPid="412" SubjectStart="1555000000"
//	       ObjType="file" ObjHost="desktop1" Path="C:\x\y.doc"/>

type etwEvent struct {
	XMLName      xml.Name `xml:"Event"`
	Time         string   `xml:"Time,attr"`
	Action       string   `xml:"Action,attr"`
	Dir          string   `xml:"Dir,attr"`
	Amount       int64    `xml:"Amount,attr"`
	SubjectHost  string   `xml:"SubjectHost,attr"`
	SubjectExe   string   `xml:"SubjectExe,attr"`
	SubjectPid   int32    `xml:"SubjectPid,attr"`
	SubjectStart int64    `xml:"SubjectStart,attr"`
	ObjType      string   `xml:"ObjType,attr"`
	ObjHost      string   `xml:"ObjHost,attr"`
	// Process object.
	Exe   string `xml:"Exe,attr,omitempty"`
	Pid   int32  `xml:"Pid,attr,omitempty"`
	Start int64  `xml:"Start,attr,omitempty"`
	// File object.
	Path string `xml:"Path,attr,omitempty"`
	// Socket object.
	SrcIP   string `xml:"SrcIP,attr,omitempty"`
	SrcPort uint16 `xml:"SrcPort,attr,omitempty"`
	DstIP   string `xml:"DstIP,attr,omitempty"`
	DstPort uint16 `xml:"DstPort,attr,omitempty"`
}

func encodeETW(r Record) (string, error) {
	ev := etwEvent{
		Time:         time.Unix(r.Time, 0).UTC().Format(time.RFC3339),
		Action:       r.Action.String(),
		Dir:          r.Dir.String(),
		Amount:       r.Amount,
		SubjectHost:  r.Subject.Host,
		SubjectExe:   r.Subject.Exe,
		SubjectPid:   r.Subject.PID,
		SubjectStart: r.Subject.Start,
		ObjType:      r.Object.Type.String(),
		ObjHost:      r.Object.Host,
	}
	switch r.Object.Type {
	case event.ObjProcess:
		ev.Exe, ev.Pid, ev.Start = r.Object.Exe, r.Object.PID, r.Object.Start
	case event.ObjFile:
		ev.Path = r.Object.Path
	case event.ObjSocket:
		ev.SrcIP, ev.SrcPort = r.Object.SrcIP, r.Object.SrcPort
		ev.DstIP, ev.DstPort = r.Object.DstIP, r.Object.DstPort
	default:
		return "", fmt.Errorf("audit: etw: invalid object type %d", r.Object.Type)
	}
	raw, err := xml.Marshal(ev)
	if err != nil {
		return "", fmt.Errorf("audit: etw encode: %w", err)
	}
	return string(raw), nil
}

func parseETW(line string) (Record, error) {
	var ev etwEvent
	if err := xml.Unmarshal([]byte(line), &ev); err != nil {
		return Record{}, fmt.Errorf("audit: etw parse: %w", err)
	}
	t, err := time.Parse(time.RFC3339, ev.Time)
	if err != nil {
		return Record{}, fmt.Errorf("audit: etw time: %w", err)
	}
	act, ok := event.ParseAction(ev.Action)
	if !ok {
		return Record{}, fmt.Errorf("audit: etw: unknown action %q", ev.Action)
	}
	var dir event.Direction
	switch ev.Dir {
	case "out":
		dir = event.FlowOut
	case "in":
		dir = event.FlowIn
	default:
		return Record{}, fmt.Errorf("audit: etw: bad direction %q", ev.Dir)
	}
	r := Record{
		Time:    t.Unix(),
		Action:  act,
		Dir:     dir,
		Amount:  ev.Amount,
		Subject: event.Process(ev.SubjectHost, ev.SubjectExe, ev.SubjectPid, ev.SubjectStart),
	}
	switch ev.ObjType {
	case "proc":
		r.Object = event.Process(ev.ObjHost, ev.Exe, ev.Pid, ev.Start)
	case "file":
		r.Object = event.File(ev.ObjHost, ev.Path)
	case "ip":
		r.Object = event.Socket(ev.ObjHost, ev.SrcIP, ev.SrcPort, ev.DstIP, ev.DstPort)
	default:
		return Record{}, fmt.Errorf("audit: etw: unknown object type %q", ev.ObjType)
	}
	return r, nil
}
