package explain

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"aptrace/internal/event"
)

// Explanation is the causal justification for one object, assembled from the
// flight recorder: why it is (or is not) in the dependency graph.
type Explanation struct {
	Node event.ObjID `json:"node"`
	// Included: the object entered the graph (Inclusion says how).
	// Start: the object is the alert's flow destination (hop 0).
	Included bool `json:"included"`
	Start    bool `json:"start"`
	// Inclusion is the record that brought the object into the graph
	// (edge-added, or run-start for the starting object).
	Inclusion *Record `json:"inclusion,omitempty"`
	// Exclusions are the records that kept candidates out: where-clause
	// rejections, host filtering, hop-budget refusals, dropped-object
	// skips, and abandoned windows.
	Exclusions []Record `json:"exclusions,omitempty"`
	// Scheduling traces the object's execution windows (enqueued, empty,
	// re-split, queried, abandoned).
	Scheduling []Record `json:"scheduling,omitempty"`
}

// Explain assembles the justification for node from the retained records.
// Nil-safe: a disabled recorder explains nothing.
func (r *Recorder) Explain(node event.ObjID) Explanation {
	ex := Explanation{Node: node}
	for _, rec := range r.Records() {
		if rec.Node != node {
			continue
		}
		switch rec.Kind {
		case KindRunStart:
			ex.Included, ex.Start = true, true
			c := rec
			ex.Inclusion = &c
		case KindEdgeAdded:
			ex.Included = true
			if ex.Inclusion == nil {
				c := rec
				ex.Inclusion = &c
			}
		case KindEdgeDedup:
			// Neutral: the candidate was already an edge.
		case KindEdgeDropped, KindEdgeHostFiltered, KindEdgeWhereRejected, KindEdgeHopBudget:
			ex.Exclusions = append(ex.Exclusions, rec)
		case KindWindowEnqueued, KindWindowEmpty, KindWindowResplit, KindWindowQueried, KindWindowAbandoned:
			ex.Scheduling = append(ex.Scheduling, rec)
		}
	}
	return ex
}

// Empty reports whether the recorder held no decision at all about the
// object — it was never a candidate, never scheduled, never included.
func (e Explanation) Empty() bool {
	return !e.Included && len(e.Exclusions) == 0 && len(e.Scheduling) == 0
}

// fmtWindow renders a half-open window in the compact UTC form used by the
// CLI transcript.
func fmtWindow(b, f int64) string {
	const layout = "01/02 15:04:05"
	return fmt.Sprintf("[%s, %s)", time.Unix(b, 0).UTC().Format(layout), time.Unix(f, 0).UTC().Format(layout))
}

// Justification renders the explanation as analyst-readable lines. label
// resolves object IDs to display names (normally store.Object(...).Label).
// The result is non-empty whenever the recorder holds any decision about the
// object; an object the analysis never reached yields one line saying so.
func (e Explanation) Justification(label func(event.ObjID) string) string {
	var sb strings.Builder
	switch {
	case e.Start:
		fmt.Fprintf(&sb, "starting point: alert event #%d made %s the hop-0 object\n",
			e.Inclusion.Event, label(e.Node))
	case e.Included && e.Inclusion != nil:
		fmt.Fprintf(&sb, "included via event #%d from %s at hop %d, discovered in window %s",
			e.Inclusion.Event, label(e.Inclusion.Peer), e.Inclusion.Hop, fmtWindow(e.Inclusion.Begin, e.Inclusion.Finish))
		if e.Inclusion.Boost > 0 {
			sb.WriteString(", boosted by a prioritize rule")
		}
		sb.WriteString("\n")
	case e.Included:
		fmt.Fprintf(&sb, "included (inclusion record rotated out of the ring)\n")
	}
	seen := map[string]bool{}
	for _, rec := range e.Exclusions {
		line := ""
		switch rec.Kind {
		case KindEdgeWhereRejected:
			line = fmt.Sprintf("excluded: where clause `%s` (bdl:%s) rejected candidate event #%d", rec.Clause, rec.Pos, rec.Event)
		case KindEdgeHostFiltered:
			line = fmt.Sprintf("excluded: host %q fails the general 'in' constraint (event #%d)", rec.Detail, rec.Event)
		case KindEdgeHopBudget:
			line = fmt.Sprintf("excluded: edge #%d would reach hop %d, over the hop budget %d", rec.Event, rec.Hop, rec.Card)
		case KindEdgeDropped:
			line = fmt.Sprintf("excluded: object already deleted by the where statement (event #%d skipped)", rec.Event)
		}
		if line != "" && !seen[line] {
			seen[line] = true
			sb.WriteString(line + "\n")
		}
	}
	for _, rec := range e.Scheduling {
		if rec.Kind == KindWindowAbandoned {
			line := fmt.Sprintf("frontier window %s never ran: %s", fmtWindow(rec.Begin, rec.Finish), rec.Detail)
			if !seen[line] {
				seen[line] = true
				sb.WriteString(line + "\n")
			}
		}
	}
	if sb.Len() == 0 {
		return "no decision recorded: the analysis never reached this object\n"
	}
	return sb.String()
}

// Pruned is one prune-frontier entry: an object that was a candidate for the
// graph but was kept out, with the first decision that excluded it and, where
// known, the graph node the excluded edge would have attached to.
type Pruned struct {
	Node   event.ObjID
	Peer   event.ObjID // graph-side endpoint of the rejected edge (0 if unknown)
	Kind   Kind
	Reason string
}

// PruneFrontier lists the objects excluded from the analysis, one entry per
// object (the earliest exclusion wins), sorted by object ID for
// deterministic output. Objects that later made it into the graph anyway
// (e.g. admitted after a plan update relaxed the filter) are omitted.
func (r *Recorder) PruneFrontier() []Pruned {
	included := map[event.ObjID]bool{}
	first := map[event.ObjID]Pruned{}
	for _, rec := range r.Records() {
		switch rec.Kind {
		case KindRunStart, KindEdgeAdded:
			included[rec.Node] = true
		case KindEdgeWhereRejected, KindEdgeHostFiltered, KindEdgeHopBudget:
			if _, ok := first[rec.Node]; ok {
				continue
			}
			p := Pruned{Node: rec.Node, Peer: rec.Peer, Kind: rec.Kind}
			switch rec.Kind {
			case KindEdgeWhereRejected:
				p.Reason = fmt.Sprintf("where clause `%s` (bdl:%s)", rec.Clause, rec.Pos)
			case KindEdgeHostFiltered:
				p.Reason = fmt.Sprintf("host %q outside 'in' constraint", rec.Detail)
			case KindEdgeHopBudget:
				p.Reason = fmt.Sprintf("hop budget %d", rec.Card)
			}
			first[rec.Node] = p
		}
	}
	out := make([]Pruned, 0, len(first))
	for id, p := range first {
		if included[id] {
			continue
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// dumpPayload is the /debug/explain response body.
type dumpPayload struct {
	Emitted uint64   `json:"emitted"`
	Dropped uint64   `json:"dropped"`
	Records []Record `json:"records"`
}

// Handler returns an http.Handler dumping the recorder as JSON — mounted at
// /debug/explain next to the telemetry endpoints. Safe on a nil recorder
// (serves an empty dump).
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		emitted, dropped := r.Stats()
		recs := r.Records()
		if recs == nil {
			recs = []Record{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(dumpPayload{Emitted: emitted, Dropped: dropped, Records: recs})
	})
}
