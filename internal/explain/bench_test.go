package explain

import (
	"testing"

	"aptrace/internal/event"
)

// BenchmarkDisabledEmission measures the cost of an emission call site when
// recording is off — the nil pointer test the whole package is designed
// around. The contract is ≤2 ns/op: instrumented code must be free to record
// unconditionally.
func BenchmarkDisabledEmission(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.EdgeAdded(event.EventID(i), 1, 2, 3, 0, 10, 0)
	}
}

// BenchmarkEnabledEmission is the recording path: one mutex round-trip plus a
// ring slot write.
func BenchmarkEnabledEmission(b *testing.B) {
	r := New(1<<12, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.EdgeAdded(event.EventID(i), 1, 2, 3, 0, 10, 0)
	}
}

// BenchmarkExplain measures assembling one justification from a populated
// ring.
func BenchmarkExplain(b *testing.B) {
	r := New(1<<12, nil)
	for i := 0; i < 1<<12; i++ {
		r.EdgeAdded(event.EventID(i), event.ObjID(i%64), 2, 3, 0, 10, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Explain(event.ObjID(i % 64))
	}
}
