// Package explain is APTrace's decision flight recorder: a ring-buffered
// journal of every verdict the analysis engine reaches while it grows (or
// declines to grow) the dependency graph. Metrics (internal/telemetry) say
// how fast the analysis ran; this package says *why* it produced the graph
// it did — which BDL where clause deleted a candidate, which window an edge
// was discovered in, why a frontier was abandoned when a budget expired.
//
// The recorder follows the same no-op-when-disabled discipline as
// internal/telemetry: every emission method is defined on a nil-safe pointer
// receiver, so instrumented code records unconditionally and a nil *Recorder
// costs a single pointer test (see BenchmarkDisabledEmission). Records carry
// analysis-clock timestamps, so a run under the simulated clock produces a
// deterministic trace, and one recorder belongs to one analysis — fleet
// workers each attach their own, keeping parallel runs byte-identical to
// serial ones.
//
// On top of the raw trace, Explain (query.go) walks the records and
// assembles a causal justification for any object the analysis touched:
// "included via edge e at hop 3, window [t1,t2)" for graph nodes, a concrete
// excluding clause or budget reason for pruned candidates.
package explain

import (
	"fmt"
	"sync"
	"time"

	"aptrace/internal/bdl"
	"aptrace/internal/event"
	"aptrace/internal/simclock"
	"aptrace/internal/telemetry"
)

// Kind classifies a decision record.
type Kind uint8

const (
	// KindRunStart opens a run: Event is the alert, Node its flow
	// destination (the hop-0 object), Begin/Finish the analysis range.
	KindRunStart Kind = iota
	// KindEdgeAdded: the candidate event became a graph edge. Node is the
	// newly reached object, Peer the already-known endpoint, Begin/Finish
	// the execution window the edge was discovered in, Hop the new
	// object's path length, Boost the prioritize-rule verdict.
	KindEdgeAdded
	// KindEdgeDedup: the candidate event is already an edge of the graph.
	KindEdgeDedup
	// KindEdgeDropped: the candidate's object was rejected by the where
	// statement earlier in the run and stays deleted from the analysis.
	KindEdgeDropped
	// KindEdgeHostFiltered: an endpoint host fails the general "in"
	// constraint.
	KindEdgeHostFiltered
	// KindEdgeWhereRejected: the where statement deleted the candidate
	// object. Clause holds the BDL text of the deciding clause and Pos its
	// script position.
	KindEdgeWhereRejected
	// KindEdgeHopBudget: the edge would extend a path beyond the "hop"
	// budget. Hop carries the length the path would have reached.
	KindEdgeHopBudget
	// KindWindowEnqueued: an execution window entered the priority queue.
	// Card is the index-only cardinality estimate, State/Boost the
	// scheduling priority inputs.
	KindWindowEnqueued
	// KindWindowEmpty: the window was provably empty at enqueue time and
	// never entered the queue.
	KindWindowEmpty
	// KindWindowResplit: the window exceeded the per-retrieval row cap and
	// was split in half instead of being queried. Card is the row estimate
	// that triggered the split.
	KindWindowResplit
	// KindWindowQueried: the window ran as one bounded query; Card is the
	// number of rows retrieved.
	KindWindowQueried
	// KindWindowAbandoned: the run ended with this window still queued.
	// Detail carries the stop reason (time budget, analyst stop).
	KindWindowAbandoned
	// KindPlanUpdate: the analyst swapped in a new script version. Detail
	// summarizes the delta, Clause the refiner's resume decision.
	KindPlanUpdate
	// KindPause and KindResume bracket analyst pauses.
	KindPause
	KindResume
	// KindFinalize: tracking-statement path pruning removed Card edges.
	KindFinalize
	// KindMemoHit and KindMemoMiss record cross-alert memo cache verdicts:
	// Node is the queried object, Begin/Finish the window, Card the row
	// count served (hit) or computed (miss), Detail the cached query kind
	// (backward rows, forward rows, or a computed attribute). A hit changes
	// no charged cost — only real CPU — so these records are how a trace
	// shows where the cache intervened.
	KindMemoHit
	KindMemoMiss
)

var kindNames = [...]string{
	KindRunStart:          "run-start",
	KindEdgeAdded:         "edge-added",
	KindEdgeDedup:         "edge-dedup",
	KindEdgeDropped:       "edge-dropped",
	KindEdgeHostFiltered:  "edge-host-filtered",
	KindEdgeWhereRejected: "edge-where-rejected",
	KindEdgeHopBudget:     "edge-hop-budget",
	KindWindowEnqueued:    "window-enqueued",
	KindWindowEmpty:       "window-empty",
	KindWindowResplit:     "window-resplit",
	KindWindowQueried:     "window-queried",
	KindWindowAbandoned:   "window-abandoned",
	KindPlanUpdate:        "plan-update",
	KindPause:             "pause",
	KindResume:            "resume",
	KindFinalize:          "finalize",
	KindMemoHit:           "memo-hit",
	KindMemoMiss:          "memo-miss",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", k)
}

// MarshalJSON renders the kind as its name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// Record is one decision. Field meaning varies by Kind (see the Kind
// constants); unused fields are zero.
type Record struct {
	Seq    uint64        `json:"seq"`
	Kind   Kind          `json:"kind"`
	At     time.Time     `json:"at"`
	Event  event.EventID `json:"event,omitempty"`
	Node   event.ObjID   `json:"node"`
	Peer   event.ObjID   `json:"peer,omitempty"`
	Hop    int           `json:"hop,omitempty"`
	Begin  int64         `json:"begin,omitempty"`
	Finish int64         `json:"finish,omitempty"`
	Card   int           `json:"card,omitempty"`
	State  int           `json:"state,omitempty"`
	Boost  int           `json:"boost,omitempty"`
	Clause string        `json:"clause,omitempty"`
	Pos    string        `json:"pos,omitempty"`
	Detail string        `json:"detail,omitempty"`
}

// DefaultCapacity is the ring size of a recorder created with capacity <= 0:
// large enough to hold every decision of the paper-scale analyses, small
// enough (~8 MB) to attach to each fleet worker.
const DefaultCapacity = 1 << 16

// Recorder is the flight recorder: a fixed-capacity ring of decision
// records. When the ring is full the oldest records are overwritten and the
// aptrace_explain_dropped_total counter says so — overflow is visible, not
// silent. A nil *Recorder is a valid disabled recorder: every method is a
// no-op behind one pointer test.
type Recorder struct {
	mu      sync.Mutex
	ring    []Record
	seq     uint64 // total records emitted (next Seq)
	dropped uint64
	clk     simclock.Clock

	telRecords *telemetry.Counter
	telDropped *telemetry.Counter
}

// New returns a recorder holding the most recent capacity records
// (DefaultCapacity if capacity <= 0). reg, if non-nil, receives the
// aptrace_explain_records_total / aptrace_explain_dropped_total counters.
func New(capacity int, reg *telemetry.Registry) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		ring:       make([]Record, 0, capacity),
		telRecords: reg.Counter(telemetry.MetricExplainRecords),
		telDropped: reg.Counter(telemetry.MetricExplainDropped),
	}
}

// SetClock binds the analysis clock records are stamped with. The executor
// calls this when the recorder is attached, so records carry simulated time
// under the cost model. Nil-safe; a recorder without a clock stamps zero
// times.
func (r *Recorder) SetClock(clk simclock.Clock) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.clk = clk
	r.mu.Unlock()
}

// add appends one record under the lock, stamping sequence and time.
func (r *Recorder) add(rec Record) {
	r.mu.Lock()
	rec.Seq = r.seq
	if r.clk != nil {
		rec.At = r.clk.Now()
	}
	r.seq++
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, rec)
	} else {
		r.ring[int(rec.Seq)%cap(r.ring)] = rec
		r.dropped++
	}
	r.mu.Unlock()
	r.telRecords.Inc()
	if rec.Seq >= uint64(cap(r.ring)) {
		r.telDropped.Inc()
	}
}

// The emission methods below are split into an inlinable nil check and an
// unexported slow path, so a disabled recorder costs one pointer test at
// every call site (the ≤2 ns/op contract asserted by BenchmarkDisabledEmission).

// RunStart records the start of an analysis from alert.
func (r *Recorder) RunStart(alert event.Event, node event.ObjID, from, to int64) {
	if r == nil {
		return
	}
	r.add(Record{Kind: KindRunStart, Event: alert.ID, Node: node, Begin: from, Finish: to})
}

// EdgeAdded records an edge landing in the graph: node is the newly reached
// object, peer the known endpoint, [wb,wf) the discovering window.
func (r *Recorder) EdgeAdded(ev event.EventID, node, peer event.ObjID, hop int, wb, wf int64, boost int) {
	if r == nil {
		return
	}
	r.add(Record{Kind: KindEdgeAdded, Event: ev, Node: node, Peer: peer, Hop: hop, Begin: wb, Finish: wf, Boost: boost})
}

// EdgeDedup records a candidate already present as a graph edge.
func (r *Recorder) EdgeDedup(ev event.EventID, node event.ObjID) {
	if r == nil {
		return
	}
	r.add(Record{Kind: KindEdgeDedup, Event: ev, Node: node})
}

// EdgeDropped records a candidate skipped because its object was already
// deleted by the where statement; peer is the graph-side endpoint the edge
// would have attached to.
func (r *Recorder) EdgeDropped(ev event.EventID, node, peer event.ObjID) {
	if r == nil {
		return
	}
	r.add(Record{Kind: KindEdgeDropped, Event: ev, Node: node, Peer: peer})
}

// EdgeHostFiltered records a candidate rejected by the general "in" host
// constraint.
func (r *Recorder) EdgeHostFiltered(ev event.EventID, node, peer event.ObjID, host string) {
	if r == nil {
		return
	}
	r.add(Record{Kind: KindEdgeHostFiltered, Event: ev, Node: node, Peer: peer, Detail: host})
}

// EdgeWhereRejected records the where statement deleting a candidate object;
// clause/pos identify the deciding BDL clause.
func (r *Recorder) EdgeWhereRejected(ev event.EventID, node, peer event.ObjID, clause string, pos bdl.Pos) {
	if r == nil {
		return
	}
	r.add(Record{Kind: KindEdgeWhereRejected, Event: ev, Node: node, Peer: peer, Clause: clause, Pos: pos.String()})
}

// EdgeHopBudget records a candidate rejected by the hop budget; hop is the
// path length the edge would have reached, limit the budget.
func (r *Recorder) EdgeHopBudget(ev event.EventID, node, peer event.ObjID, hop, limit int) {
	if r == nil {
		return
	}
	r.add(Record{Kind: KindEdgeHopBudget, Event: ev, Node: node, Peer: peer, Hop: hop, Card: limit})
}

// WindowEnqueued records an execution window entering the priority queue.
func (r *Recorder) WindowEnqueued(node event.ObjID, wb, wf int64, card, state, boost int) {
	if r == nil {
		return
	}
	r.add(Record{Kind: KindWindowEnqueued, Node: node, Begin: wb, Finish: wf, Card: card, State: state, Boost: boost})
}

// WindowEmpty records a window pruned at enqueue time by the index-only
// cardinality estimate.
func (r *Recorder) WindowEmpty(node event.ObjID, wb, wf int64) {
	if r == nil {
		return
	}
	r.add(Record{Kind: KindWindowEmpty, Node: node, Begin: wb, Finish: wf})
}

// WindowResplit records a window split instead of queried; card is the row
// estimate that exceeded the cap.
func (r *Recorder) WindowResplit(node event.ObjID, wb, wf int64, card int) {
	if r == nil {
		return
	}
	r.add(Record{Kind: KindWindowResplit, Node: node, Begin: wb, Finish: wf, Card: card})
}

// WindowQueried records a window executing as one bounded query retrieving
// rows rows.
func (r *Recorder) WindowQueried(node event.ObjID, wb, wf int64, rows int) {
	if r == nil {
		return
	}
	r.add(Record{Kind: KindWindowQueried, Node: node, Begin: wb, Finish: wf, Card: rows})
}

// MemoVerdict records a memo-cache lookup: hit says whether the cached
// closure was served, what names the cached query kind ("backward",
// "forward", "readonly", "write-through", "file-times"), node/wb/wf identify
// the (object, window) key, and rows is the row count served or computed.
func (r *Recorder) MemoVerdict(hit bool, what string, node event.ObjID, wb, wf int64, rows int) {
	if r == nil {
		return
	}
	k := KindMemoMiss
	if hit {
		k = KindMemoHit
	}
	r.add(Record{Kind: k, Node: node, Begin: wb, Finish: wf, Card: rows, Detail: what})
}

// WindowAbandoned records a window still queued when the run ended; reason
// is the stop reason.
func (r *Recorder) WindowAbandoned(node event.ObjID, wb, wf int64, reason string) {
	if r == nil {
		return
	}
	r.add(Record{Kind: KindWindowAbandoned, Node: node, Begin: wb, Finish: wf, Detail: reason})
}

// PlanUpdate records a script change: decision is the refiner's resume
// action, delta a human-readable summary of what changed.
func (r *Recorder) PlanUpdate(decision, delta string) {
	if r == nil {
		return
	}
	r.add(Record{Kind: KindPlanUpdate, Clause: decision, Detail: delta})
}

// Pause records the analyst pausing the run.
func (r *Recorder) Pause() {
	if r == nil {
		return
	}
	r.add(Record{Kind: KindPause})
}

// Resume records the analyst resuming the run.
func (r *Recorder) Resume() {
	if r == nil {
		return
	}
	r.add(Record{Kind: KindResume})
}

// Finalize records tracking-statement path pruning removing removed edges.
func (r *Recorder) Finalize(removed int) {
	if r == nil {
		return
	}
	r.add(Record{Kind: KindFinalize, Card: removed})
}

// Records returns the retained records in emission order (oldest first).
// Nil-safe: a disabled recorder returns nil.
func (r *Recorder) Records() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq <= uint64(cap(r.ring)) {
		return append([]Record(nil), r.ring...)
	}
	// The ring wrapped: the oldest record sits at seq % cap.
	out := make([]Record, 0, len(r.ring))
	head := int(r.seq) % cap(r.ring)
	out = append(out, r.ring[head:]...)
	out = append(out, r.ring[:head]...)
	return out
}

// Stats reports how many records were emitted in total and how many were
// overwritten by ring overflow.
func (r *Recorder) Stats() (emitted, dropped uint64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq, r.dropped
}

// CountByKind tallies the retained records per kind name — the breakdown
// journal entries and benchmark summaries report.
func (r *Recorder) CountByKind() map[string]int {
	out := make(map[string]int)
	for _, rec := range r.Records() {
		out[rec.Kind.String()]++
	}
	return out
}
