package explain

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aptrace/internal/bdl"
	"aptrace/internal/event"
	"aptrace/internal/simclock"
	"aptrace/internal/telemetry"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	// Every emission method must be callable on a nil receiver.
	r.RunStart(event.Event{ID: 1}, 2, 0, 10)
	r.EdgeAdded(1, 2, 3, 1, 0, 10, 0)
	r.EdgeDedup(1, 2)
	r.EdgeDropped(1, 2, 3)
	r.EdgeHostFiltered(1, 2, 3, "ws9")
	r.EdgeWhereRejected(1, 2, 3, "clause", bdl.Pos{})
	r.EdgeHopBudget(1, 2, 3, 5, 4)
	r.WindowEnqueued(2, 0, 10, 1, -1, 0)
	r.WindowEmpty(2, 0, 10)
	r.WindowResplit(2, 0, 10, 99)
	r.WindowQueried(2, 0, 10, 3)
	r.WindowAbandoned(2, 0, 10, "stopped")
	r.PlanUpdate("resume", "where changed")
	r.Pause()
	r.Resume()
	r.Finalize(2)
	r.SetClock(simclock.NewSimulated(time.Time{}))
	if got := r.Records(); got != nil {
		t.Fatalf("nil recorder Records() = %v, want nil", got)
	}
	if e, d := r.Stats(); e != 0 || d != 0 {
		t.Fatalf("nil recorder Stats() = %d,%d", e, d)
	}
	if ex := r.Explain(2); !ex.Empty() {
		t.Fatalf("nil recorder Explain() not empty: %+v", ex)
	}
	if fr := r.PruneFrontier(); len(fr) != 0 {
		t.Fatalf("nil recorder PruneFrontier() = %v", fr)
	}
}

func TestRingOverwriteAndStats(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := New(4, reg)
	for i := 0; i < 10; i++ {
		r.EdgeDedup(event.EventID(i), event.ObjID(i))
	}
	emitted, dropped := r.Stats()
	if emitted != 10 || dropped != 6 {
		t.Fatalf("Stats() = %d,%d, want 10,6", emitted, dropped)
	}
	recs := r.Records()
	if len(recs) != 4 {
		t.Fatalf("retained %d records, want 4", len(recs))
	}
	// Oldest-first order with the oldest retained record first.
	for i, rec := range recs {
		if want := uint64(6 + i); rec.Seq != want {
			t.Errorf("recs[%d].Seq = %d, want %d", i, rec.Seq, want)
		}
	}
	if got := reg.Counter(telemetry.MetricExplainRecords).Value(); got != 10 {
		t.Errorf("%s = %d, want 10", telemetry.MetricExplainRecords, got)
	}
	if got := reg.Counter(telemetry.MetricExplainDropped).Value(); got != 6 {
		t.Errorf("%s = %d, want 6", telemetry.MetricExplainDropped, got)
	}
}

func TestClockStamping(t *testing.T) {
	clk := simclock.NewSimulated(time.Time{})
	r := New(0, nil)
	r.SetClock(clk)
	r.EdgeDedup(1, 1)
	clk.Advance(5 * time.Second)
	r.EdgeDedup(2, 1)
	recs := r.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if d := recs[1].At.Sub(recs[0].At); d != 5*time.Second {
		t.Fatalf("timestamp delta = %s, want 5s", d)
	}
}

func TestExplainClassification(t *testing.T) {
	r := New(0, nil)
	alert := event.Event{ID: 100}
	r.RunStart(alert, 1, 0, 1000)
	r.EdgeAdded(101, 2, 1, 1, 0, 500, 1)
	r.WindowEnqueued(2, 0, 500, 3, -1, 1)
	r.WindowQueried(2, 0, 500, 3)
	r.EdgeWhereRejected(102, 3, 2, `file.path != "*.dll"`, bdl.Pos{Line: 2, Col: 7})
	r.EdgeHopBudget(103, 4, 2, 7, 6)
	r.WindowAbandoned(5, 0, 250, "time budget exceeded")

	start := r.Explain(1)
	if !start.Included || !start.Start || start.Inclusion == nil {
		t.Fatalf("start explanation wrong: %+v", start)
	}
	if !strings.Contains(start.Justification(labelID), "starting point") {
		t.Errorf("start justification: %q", start.Justification(labelID))
	}

	inc := r.Explain(2)
	if !inc.Included || inc.Start || inc.Inclusion == nil || inc.Inclusion.Event != 101 {
		t.Fatalf("included explanation wrong: %+v", inc)
	}
	j := inc.Justification(labelID)
	if !strings.Contains(j, "included via event #101") || !strings.Contains(j, "hop 1") {
		t.Errorf("included justification: %q", j)
	}
	if !strings.Contains(j, "boosted by a prioritize rule") {
		t.Errorf("boost missing from justification: %q", j)
	}
	if len(inc.Scheduling) != 2 {
		t.Errorf("scheduling records = %d, want 2", len(inc.Scheduling))
	}

	rej := r.Explain(3)
	if rej.Included || len(rej.Exclusions) != 1 {
		t.Fatalf("rejected explanation wrong: %+v", rej)
	}
	j = rej.Justification(labelID)
	if !strings.Contains(j, `where clause`) || !strings.Contains(j, "*.dll") || !strings.Contains(j, "2:7") {
		t.Errorf("where justification: %q", j)
	}

	hop := r.Explain(4)
	if !strings.Contains(hop.Justification(labelID), "hop budget 6") {
		t.Errorf("hop justification: %q", hop.Justification(labelID))
	}

	aband := r.Explain(5)
	if !strings.Contains(aband.Justification(labelID), "never ran: time budget exceeded") {
		t.Errorf("abandoned justification: %q", aband.Justification(labelID))
	}

	nothing := r.Explain(99)
	if !nothing.Empty() || !strings.Contains(nothing.Justification(labelID), "never reached") {
		t.Errorf("unknown-object justification: %q", nothing.Justification(labelID))
	}
}

func labelID(id event.ObjID) string { return "obj" + string(rune('0'+id%10)) }

func TestPruneFrontier(t *testing.T) {
	r := New(0, nil)
	r.RunStart(event.Event{ID: 1}, 1, 0, 1000)
	// Object 3: excluded twice — only the first exclusion is reported.
	r.EdgeWhereRejected(10, 3, 1, "clause-a", bdl.Pos{Line: 1, Col: 1})
	r.EdgeHopBudget(11, 3, 1, 9, 8)
	// Object 2: excluded, then later admitted — omitted from the frontier.
	r.EdgeHostFiltered(12, 2, 1, "ws9")
	r.EdgeAdded(13, 2, 1, 1, 0, 500, 0)
	// Object 5: excluded once.
	r.EdgeHostFiltered(14, 5, 2, "ws9")

	fr := r.PruneFrontier()
	if len(fr) != 2 {
		t.Fatalf("frontier = %+v, want 2 entries", fr)
	}
	if fr[0].Node != 3 || fr[1].Node != 5 {
		t.Fatalf("frontier order = %d,%d, want 3,5", fr[0].Node, fr[1].Node)
	}
	if fr[0].Kind != KindEdgeWhereRejected || !strings.Contains(fr[0].Reason, "clause-a") {
		t.Errorf("frontier[0] = %+v", fr[0])
	}
	if fr[1].Peer != 2 {
		t.Errorf("frontier[1].Peer = %d, want 2", fr[1].Peer)
	}
}

func TestHandlerJSONDump(t *testing.T) {
	r := New(0, nil)
	r.EdgeDedup(1, 2)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/explain", nil))
	var out struct {
		Emitted uint64            `json:"emitted"`
		Dropped uint64            `json:"dropped"`
		Records []json.RawMessage `json:"records"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if out.Emitted != 1 || out.Dropped != 0 || len(out.Records) != 1 {
		t.Fatalf("dump = %+v", out)
	}
	if !strings.Contains(string(out.Records[0]), `"kind": "edge-dedup"`) {
		t.Errorf("kind not marshaled by name: %s", out.Records[0])
	}

	// A nil recorder still serves a valid, empty dump.
	var nilRec *Recorder
	rec2 := httptest.NewRecorder()
	nilRec.Handler().ServeHTTP(rec2, httptest.NewRequest("GET", "/debug/explain", nil))
	if !strings.Contains(rec2.Body.String(), `"records": []`) {
		t.Errorf("nil dump: %s", rec2.Body.String())
	}
}

func TestCountByKind(t *testing.T) {
	r := New(0, nil)
	r.EdgeDedup(1, 1)
	r.EdgeDedup(2, 1)
	r.Pause()
	got := r.CountByKind()
	if got["edge-dedup"] != 2 || got["pause"] != 1 {
		t.Fatalf("CountByKind = %v", got)
	}
}
