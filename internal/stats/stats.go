// Package stats provides the small statistical toolkit the experiment
// harness uses to report results in the paper's terms: means and standard
// deviations, percentiles (Table II), and box-plot five-number summaries
// (Figure 4).
package stats

import (
	"math"
	"sort"
	"time"
)

// Summary is a five-number box-plot summary plus mean and count.
type Summary struct {
	N                        int
	Min, Q1, Median, Q3, Max float64
	Mean, Std                float64
}

// Summarize computes a Summary of xs. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum, sum2 := 0.0, 0.0
	for _, v := range s {
		sum += v
		sum2 += v * v
	}
	n := float64(len(s))
	mean := sum / n
	variance := sum2/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.50),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   mean,
		Std:    math.Sqrt(variance),
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics, matching the convention of R's
// default (type 7) quantile, which is also what numpy.percentile uses.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Percentiles computes several quantiles in one pass over a single sort.
func Percentiles(xs []float64, qs ...float64) []float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if len(s) == 0 {
			out[i] = 0
			continue
		}
		out[i] = quantileSorted(s, q)
	}
	return out
}

// Durations converts a slice of time.Duration to float64 seconds.
func Durations(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// DistinctTimes collapses runs of identical consecutive timestamps into one:
// edges that land in the same instant (one query's batch) constitute a
// single update to the dependency graph.
func DistinctTimes(ts []time.Time) []time.Time {
	out := ts[:0:0]
	for i, t := range ts {
		if i == 0 || !t.Equal(ts[i-1]) {
			out = append(out, t)
		}
	}
	return out
}

// Deltas returns the consecutive differences of a monotone time series:
// the inter-update waiting times of Table II.
func Deltas(ts []time.Time) []time.Duration {
	if len(ts) < 2 {
		return nil
	}
	out := make([]time.Duration, 0, len(ts)-1)
	for i := 1; i < len(ts); i++ {
		out = append(out, ts[i].Sub(ts[i-1]))
	}
	return out
}

// TopBottomRatio returns the ratio between the mean of the top fraction and
// the mean of the bottom fraction of xs (e.g. frac=0.1 compares the top and
// bottom deciles), the statistic Section IV-B2 reports for Figure 4.
// It returns 0 when the bottom mean is zero or the input is empty.
func TopBottomRatio(xs []float64, frac float64) float64 {
	if len(xs) == 0 || frac <= 0 || frac > 0.5 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	k := int(math.Ceil(float64(len(s)) * frac))
	var bottom, top float64
	for i := 0; i < k; i++ {
		bottom += s[i]
		top += s[len(s)-1-i]
	}
	if bottom == 0 {
		return 0
	}
	return top / bottom
}
