package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if !almost(s.Mean, 3) {
		t.Errorf("mean = %v", s.Mean)
	}
	if !almost(s.Q1, 2) || !almost(s.Q3, 4) {
		t.Errorf("quartiles = %v %v", s.Q1, s.Q3)
	}
	if !almost(s.Std, math.Sqrt(2)) {
		t.Errorf("std = %v, want sqrt(2)", s.Std)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile must be 0")
	}
	// Input must not be mutated.
	orig := []float64{3, 1, 2}
	Quantile(orig, 0.5)
	if orig[0] != 3 {
		t.Error("input mutated")
	}
}

func TestPercentiles(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	got := Percentiles(xs, 0.90, 0.95, 0.99)
	want := []float64{90, 95, 99}
	for i := range want {
		if !almost(got[i], want[i]) {
			t.Errorf("p%v = %v, want %v", want[i], got[i], want[i])
		}
	}
	if got := Percentiles(nil, 0.5); got[0] != 0 {
		t.Error("empty percentile must be 0")
	}
}

func TestDeltas(t *testing.T) {
	t0 := time.Unix(0, 0)
	ts := []time.Time{t0, t0.Add(2 * time.Second), t0.Add(3 * time.Second)}
	ds := Deltas(ts)
	if len(ds) != 2 || ds[0] != 2*time.Second || ds[1] != time.Second {
		t.Fatalf("deltas = %v", ds)
	}
	if Deltas(ts[:1]) != nil || Deltas(nil) != nil {
		t.Error("short input must yield nil")
	}
}

func TestDurations(t *testing.T) {
	ds := Durations([]time.Duration{time.Second, 1500 * time.Millisecond})
	if !almost(ds[0], 1) || !almost(ds[1], 1.5) {
		t.Fatalf("durations = %v", ds)
	}
}

func TestTopBottomRatio(t *testing.T) {
	xs := []float64{1, 1, 1, 1, 1, 10, 10, 10, 10, 100}
	// top decile = {100}, bottom decile = {1}: ratio 100.
	if got := TopBottomRatio(xs, 0.1); !almost(got, 100) {
		t.Fatalf("ratio = %v", got)
	}
	if TopBottomRatio(nil, 0.1) != 0 {
		t.Error("empty input must yield 0")
	}
	if TopBottomRatio(xs, 0) != 0 || TopBottomRatio(xs, 0.9) != 0 {
		t.Error("invalid fractions must yield 0")
	}
	if TopBottomRatio([]float64{0, 0, 5}, 0.34) != 0 {
		t.Error("zero bottom must yield 0")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		xs := make([]float64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				t.Fatalf("quantile not monotone at q=%v", q)
			}
			prev = v
		}
		s := Summarize(xs)
		if s.Min > s.Q1 || s.Q1 > s.Median || s.Median > s.Q3 || s.Q3 > s.Max {
			t.Fatalf("summary ordering violated: %+v", s)
		}
	}
}
