package repl

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aptrace/internal/core"
	"aptrace/internal/simclock"
	"aptrace/internal/workload"
)

func replStore(t *testing.T) (*workload.Dataset, string) {
	t.Helper()
	ds, err := workload.Generate(workload.Config{Seed: 9, Hosts: 4, Days: 3, Density: 0.4}, simclock.NewSimulated(time.Time{}))
	if err != nil {
		t.Fatal(err)
	}
	return ds, ds.Attacks[0].Scripts[0]
}

func TestConsoleFullInvestigation(t *testing.T) {
	ds, v1 := replStore(t)
	dot := filepath.Join(t.TempDir(), "out.dot")

	// The full analyst flow: look at alerts, start a script, pause,
	// inspect, ask for suggestions, refine inline, resume, stop, render.
	v2 := strings.Replace(v1, "output =", `where file.path != "*.dll"`+"\noutput =", 1)
	input := strings.Join([]string{
		"alerts 3",
		"script", v1, ".",
		"pause",
		"status",
		"top 3",
		"suggest 3",
		"script", v2, ".",
		"resume",
		"stop",
		"dot " + dot,
		"quit",
	}, "\n")

	var out bytes.Buffer
	c := New(ds.Store, core.Options{}, &out)
	n, err := c.Run(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if n < 10 {
		t.Fatalf("executed %d commands", n)
	}
	text := out.String()
	for _, want := range []string{
		"alerts; showing",
		"analysis started",
		"paused",
		"events,",
		"edges", // top output
		"refiner decision: resume",
		"resumed",
		"analysis stopped by analyst",
		"graph written to",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("console output missing %q:\n%s", want, text)
		}
	}
	raw, err := os.ReadFile(dot)
	if err != nil || !strings.Contains(string(raw), "digraph aptrace") {
		t.Fatalf("dot file: %v", err)
	}
}

func TestConsoleErrorsAndGuards(t *testing.T) {
	ds, _ := replStore(t)
	input := strings.Join([]string{
		"status", // nothing running
		"bogus",  // unknown command
		"load /nonexistent/file.bdl",
		"script", "this is not bdl", ".",
		"dot", // requires running analysis
		"quit",
	}, "\n")
	var out bytes.Buffer
	c := New(ds.Store, core.Options{}, &out)
	if _, err := c.Run(strings.NewReader(input)); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"no analysis running",
		`unknown command "bogus"`,
		"error:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestConsoleLoadFromFile(t *testing.T) {
	ds, v1 := replStore(t)
	f := filepath.Join(t.TempDir(), "v1.bdl")
	if err := os.WriteFile(f, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	input := fmt.Sprintf("load %s\nstop\nquit\n", f)
	var out bytes.Buffer
	c := New(ds.Store, core.Options{}, &out)
	if _, err := c.Run(strings.NewReader(input)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "analysis started") {
		t.Fatalf("load did not start analysis:\n%s", out.String())
	}
}

func TestConsoleEOFTerminates(t *testing.T) {
	ds, _ := replStore(t)
	var out bytes.Buffer
	c := New(ds.Store, core.Options{}, &out)
	n, err := c.Run(strings.NewReader("help\n"))
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if !strings.Contains(out.String(), "commands:") {
		t.Fatal("help output missing")
	}
}
