// Package repl implements the interactive analyst console that cmd/aptrace
// exposes with -interactive: the concrete realization of the paper's
// Figure 3 loop. The analyst types a BDL script, watches updates stream,
// pauses, asks for suggestions, refines the script, resumes — all against
// one session. The console reads commands from an io.Reader and writes to an
// io.Writer, so the whole loop is unit-testable without a terminal.
package repl

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"aptrace/internal/alerts"
	"aptrace/internal/core"
	"aptrace/internal/event"
	"aptrace/internal/graph"
	"aptrace/internal/session"
	"aptrace/internal/stats"
	"aptrace/internal/store"
	"aptrace/internal/suggest"
)

// Console is one interactive investigation.
type Console struct {
	st   *store.Store
	opts core.Options
	out  io.Writer

	sess    *session.Session
	started bool
	paused  bool
}

// New creates a console over a sealed store. opts configures the executors
// the console creates (window count etc.).
func New(st *store.Store, opts core.Options, out io.Writer) *Console {
	return &Console{st: st, opts: opts, out: out}
}

// Run reads commands from in until EOF or "quit". It always returns the
// number of commands executed; the error reports I/O failures only —
// command-level problems are printed to the console like any shell does.
func (c *Console) Run(in io.Reader) (int, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	n := 0
	fmt.Fprintln(c.out, `aptrace interactive console — "help" lists commands`)
	for {
		fmt.Fprint(c.out, "> ")
		if !sc.Scan() {
			fmt.Fprintln(c.out)
			return n, sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		n++
		cmd, arg, _ := strings.Cut(line, " ")
		arg = strings.TrimSpace(arg)
		switch strings.ToLower(cmd) {
		case "quit", "exit":
			c.cmdStop()
			return n, nil
		case "help":
			c.cmdHelp()
		case "script":
			c.cmdScript(sc)
		case "load":
			c.cmdLoad(arg)
		case "pause":
			c.cmdPause()
		case "resume":
			c.cmdResume()
		case "stop":
			c.cmdStop()
		case "status":
			c.cmdStatus()
		case "suggest":
			c.cmdSuggest(arg)
		case "alerts":
			c.cmdAlerts(arg)
		case "top":
			c.cmdTop(arg)
		case "dot":
			c.cmdDot(arg)
		case "explain":
			c.cmdExplain(arg)
		default:
			fmt.Fprintf(c.out, "unknown command %q; try help\n", cmd)
		}
	}
}

func (c *Console) cmdHelp() {
	fmt.Fprint(c.out, `commands:
  script          enter a BDL script inline, terminated by a line with "."
                  (starts the analysis, or refines it if one is running)
  load FILE       read the script from a file instead
  pause | resume  suspend / continue exploration
  status          graph size, update cadence, analysis state
  suggest [N]     propose up to N exclusion heuristics from the hot spots
  top [N]         show the N highest fan-in nodes of the current graph
  alerts [N]      run the anomaly detector over the store
  dot FILE        write the current graph as Graphviz DOT
  explain ARG     why is this object (not) in the graph? ARG is an object
                  ID, "all" (every graph node), or "frontier" (pruned
                  candidates); needs decision recording (-explain)
  stop            terminate the analysis
  quit            stop and leave
`)
}

func (c *Console) cmdScript(sc *bufio.Scanner) {
	var lines []string
	for sc.Scan() {
		l := sc.Text()
		if strings.TrimSpace(l) == "." {
			break
		}
		lines = append(lines, l)
	}
	c.applyScript(strings.Join(lines, "\n"))
}

func (c *Console) cmdLoad(path string) {
	if path == "" {
		fmt.Fprintln(c.out, "usage: load FILE")
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(c.out, "error: %v\n", err)
		return
	}
	c.applyScript(string(raw))
}

func (c *Console) applyScript(src string) {
	if c.started {
		action, err := c.sess.UpdateScript(src)
		if err != nil {
			fmt.Fprintf(c.out, "error: %v\n", err)
			return
		}
		fmt.Fprintf(c.out, "refiner decision: %s\n", action)
		if c.paused {
			fmt.Fprintln(c.out, `(still paused; "resume" to continue)`)
		}
		return
	}
	c.sess = session.New(c.st, c.opts)
	if err := c.sess.Start(src, nil); err != nil {
		fmt.Fprintf(c.out, "error: %v\n", err)
		c.sess = nil
		return
	}
	c.started = true
	fmt.Fprintln(c.out, "analysis started; updates are streaming into the graph")
}

func (c *Console) cmdPause() {
	if !c.require() {
		return
	}
	c.sess.Pause()
	c.paused = true
	fmt.Fprintln(c.out, "paused")
}

func (c *Console) cmdResume() {
	if !c.require() {
		return
	}
	c.sess.Resume()
	c.paused = false
	fmt.Fprintln(c.out, "resumed")
}

func (c *Console) cmdStop() {
	if c.sess == nil {
		return
	}
	c.sess.Stop()
	if res, err := c.sess.Wait(); err != nil {
		fmt.Fprintf(c.out, "analysis error: %v\n", err)
	} else if res != nil {
		fmt.Fprintf(c.out, "analysis %s: %d events, %d nodes\n",
			res.Reason, res.Graph.NumEdges(), res.Graph.NumNodes())
	}
}

func (c *Console) cmdStatus() {
	g := c.graph()
	if g == nil {
		return
	}
	times := c.sess.UpdateTimes()
	state := "running"
	if c.paused {
		state = "paused"
	}
	fmt.Fprintf(c.out, "%s: %d events, %d nodes, %d updates\n",
		state, g.NumEdges(), g.NumNodes(), len(times))
	if ds := stats.Deltas(stats.DistinctTimes(times)); len(ds) > 0 {
		xs := stats.Durations(ds)
		ps := stats.Percentiles(xs, 0.5, 0.99)
		fmt.Fprintf(c.out, "update gaps: median %.2fs, p99 %.2fs\n", ps[0], ps[1])
	}
}

func (c *Console) cmdSuggest(arg string) {
	g := c.graph()
	if g == nil {
		return
	}
	n := parseN(arg, 5)
	sugs := suggest.ForGraph(g, c.st, suggest.Options{Limit: n})
	if len(sugs) == 0 {
		fmt.Fprintln(c.out, "no suggestions yet — let the analysis explore further")
		return
	}
	fmt.Fprintln(c.out, "verify, then add to the where clause:")
	for _, s := range sugs {
		fmt.Fprintf(c.out, "  %-40s -- %s\n", s.Clause, s.Reason)
		fmt.Fprintf(c.out, "  %40s    caution: %s\n", "", s.Caution)
	}
}

func (c *Console) cmdTop(arg string) {
	g := c.graph()
	if g == nil {
		return
	}
	n := parseN(arg, 8)
	for _, d := range graph.TopFanIn(g, n) {
		fmt.Fprintf(c.out, "  %4d edges  %s\n", d.In, c.st.Object(d.ID).Label())
	}
}

func (c *Console) cmdAlerts(arg string) {
	n := parseN(arg, 10)
	found, err := alerts.NewDetector().Scan(c.st, 0, 1<<62)
	if err != nil {
		fmt.Fprintf(c.out, "error: %v\n", err)
		return
	}
	fmt.Fprintf(c.out, "%d alerts; showing up to %d:\n", len(found), n)
	for i, a := range found {
		if i == n {
			break
		}
		fmt.Fprintf(c.out, "  %s  [%s] %s\n",
			a.Event.When().Format(time.DateTime), a.Rule, a.Message)
	}
}

func (c *Console) cmdDot(path string) {
	if !c.require() {
		return
	}
	if path == "" {
		fmt.Fprintln(c.out, "usage: dot FILE")
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(c.out, "error: %v\n", err)
		return
	}
	defer f.Close()
	g := c.graph()
	if g == nil {
		return
	}
	if err := graph.WriteDOT(f, g, c.st.Object); err != nil {
		fmt.Fprintf(c.out, "error: %v\n", err)
		return
	}
	fmt.Fprintf(c.out, "graph written to %s\n", path)
}

// cmdExplain answers "why is this object (not) in my graph?" from the
// decision flight recorder attached to the console's executors.
func (c *Console) cmdExplain(arg string) {
	rec := c.opts.Explain
	if rec == nil {
		fmt.Fprintln(c.out, "decision recording is off; restart the console with -explain")
		return
	}
	if !c.require() {
		return
	}
	label := func(id event.ObjID) string { return c.st.Object(id).Label() }
	switch arg {
	case "":
		fmt.Fprintln(c.out, "usage: explain ID | all | frontier")
	case "all":
		g := c.graph()
		if g == nil {
			return
		}
		for _, n := range g.Nodes() {
			fmt.Fprintf(c.out, "%s (object %d):\n", label(n.ID), n.ID)
			c.printIndented(rec.Explain(n.ID).Justification(label))
		}
	case "frontier":
		frontier := rec.PruneFrontier()
		if len(frontier) == 0 {
			fmt.Fprintln(c.out, "nothing pruned yet")
			return
		}
		for _, p := range frontier {
			fmt.Fprintf(c.out, "  %-40s %s\n", label(p.Node), p.Reason)
		}
	default:
		id, err := strconv.ParseUint(arg, 10, 32)
		if err != nil {
			fmt.Fprintf(c.out, "explain: %q is not an object ID (try \"all\" or \"frontier\")\n", arg)
			return
		}
		fmt.Fprint(c.out, rec.Explain(event.ObjID(id)).Justification(label))
	}
}

func (c *Console) printIndented(s string) {
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		fmt.Fprintf(c.out, "  %s\n", line)
	}
}

// graph returns the current dependency graph, or nil (with a message) when
// no analysis is running or it has not produced a graph yet.
func (c *Console) graph() *graph.Graph {
	if !c.require() {
		return nil
	}
	g := c.sess.Graph()
	if g == nil {
		fmt.Fprintln(c.out, "the analysis is still starting; try again in a moment")
	}
	return g
}

func (c *Console) require() bool {
	if !c.started {
		fmt.Fprintln(c.out, `no analysis running; enter one with "script" or "load"`)
		return false
	}
	return true
}

func parseN(arg string, def int) int {
	if arg == "" {
		return def
	}
	if n, err := strconv.Atoi(arg); err == nil && n > 0 {
		return n
	}
	return def
}
