// Package simclock provides the clock abstraction used throughout APTrace.
//
// The paper evaluates APTrace against a PostgreSQL database holding 13 TB of
// audit events, where the dominant latency is query execution: a monolithic
// history scan for a hot object can block the analysis for minutes. This
// repository substitutes an embedded in-memory store, so real queries finish
// in microseconds; to preserve the paper's responsiveness dynamics, the store
// charges a *cost model* to a Clock for every query it executes:
//
//	elapsed = SeekCost + RowCost·rowsExamined + BucketCost·bucketsTouched
//
// The Simulated clock advances virtual time by that amount; the Real clock
// ignores charges and reports wall-clock time (for live deployments, where
// the underlying database itself provides the latency). Both the APTrace
// executor and the King–Chen baseline run against the same clock and the
// same cost model, so comparisons between them are apples-to-apples.
package simclock

import (
	"sync"
	"time"
)

// Clock is the time source injected into the store, the executor, and the
// baseline. Advance is called by the store to charge query cost.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Advance moves the clock forward by d. On the real clock this is a
	// no-op (real operations take real time); on the simulated clock it
	// advances virtual time.
	Advance(d time.Duration)
}

// Real is a Clock backed by wall-clock time. Advance is a no-op.
type Real struct{}

// Now returns the current wall-clock time.
func (Real) Now() time.Time { return time.Now() }

// Advance is a no-op on the real clock.
func (Real) Advance(time.Duration) {}

// Simulated is a virtual Clock. It starts at an arbitrary fixed epoch and
// moves only when Advance is called. It is safe for concurrent use.
type Simulated struct {
	mu  sync.Mutex
	now time.Time
}

// NewSimulated returns a simulated clock positioned at start.
// A zero start is replaced by a fixed arbitrary epoch so that durations
// between Now calls are always meaningful.
func NewSimulated(start time.Time) *Simulated {
	if start.IsZero() {
		start = time.Date(2019, 4, 1, 0, 0, 0, 0, time.UTC)
	}
	return &Simulated{now: start}
}

// Now returns the current virtual time.
func (s *Simulated) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Advance moves virtual time forward by d. Negative durations are ignored:
// time never moves backward.
func (s *Simulated) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	s.now = s.now.Add(d)
	s.mu.Unlock()
}

// CostModel converts query work into time charged to a Clock. The default
// values are calibrated against the paper's own measurements: generating the
// motivating example's 30.75K-event dependency graph took the authors' 16-core
// server more than four hours against their 13 TB PostgreSQL deployment, an
// effective latency of roughly 0.5 seconds per retrieved dependency row.
// With RowCost at 400 ms, a monolithic scan of a heavy-hitter object costs
// simulated minutes-to-hours while a bounded execution window costs a couple
// of seconds — the regime in which the paper's Table II numbers live.
type CostModel struct {
	// SeekCost is the fixed per-query overhead (planning, index descent,
	// round trip).
	SeekCost time.Duration
	// RowCost is charged per index entry examined by the query.
	RowCost time.Duration
	// BucketCost is charged per time bucket (storage page) touched by the
	// query's range, whether or not it contained matches. This is what
	// makes scanning long, sparse history ranges expensive, as it is on a
	// real disk-resident store.
	BucketCost time.Duration
}

// DefaultCostModel returns the calibrated cost model used by the experiment
// harness.
func DefaultCostModel() CostModel {
	return CostModel{
		SeekCost:   50 * time.Millisecond,
		RowCost:    400 * time.Millisecond,
		BucketCost: 5 * time.Millisecond,
	}
}

// QueryCost returns the modeled elapsed time for a query that examined
// rows index entries across buckets time buckets.
func (m CostModel) QueryCost(rows, buckets int) time.Duration {
	return m.SeekCost + time.Duration(rows)*m.RowCost + time.Duration(buckets)*m.BucketCost
}

// Charge advances clk by the modeled cost of a query.
func (m CostModel) Charge(clk Clock, rows, buckets int) {
	clk.Advance(m.QueryCost(rows, buckets))
}
