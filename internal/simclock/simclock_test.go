package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestSimulatedStartsAtGivenTime(t *testing.T) {
	start := time.Date(2019, 4, 16, 6, 15, 14, 0, time.UTC)
	c := NewSimulated(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", c.Now(), start)
	}
}

func TestSimulatedZeroStart(t *testing.T) {
	c := NewSimulated(time.Time{})
	if c.Now().IsZero() {
		t.Fatal("zero start must be replaced with a fixed epoch")
	}
}

func TestSimulatedAdvance(t *testing.T) {
	c := NewSimulated(time.Time{})
	t0 := c.Now()
	c.Advance(90 * time.Second)
	if got := c.Now().Sub(t0); got != 90*time.Second {
		t.Fatalf("advanced %v, want 90s", got)
	}
	c.Advance(-time.Hour) // must be ignored
	if got := c.Now().Sub(t0); got != 90*time.Second {
		t.Fatalf("negative advance moved the clock: %v", got)
	}
	c.Advance(0)
	if got := c.Now().Sub(t0); got != 90*time.Second {
		t.Fatalf("zero advance moved the clock: %v", got)
	}
}

func TestSimulatedConcurrentAdvance(t *testing.T) {
	c := NewSimulated(time.Time{})
	t0 := c.Now()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Now().Sub(t0); got != 8*time.Second {
		t.Fatalf("concurrent advances lost updates: %v, want 8s", got)
	}
}

func TestRealClock(t *testing.T) {
	var c Real
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatal("real clock far in the past")
	}
	c.Advance(time.Hour) // no-op, must not panic or affect Now
	if c.Now().Sub(now) > time.Minute {
		t.Fatal("Advance affected the real clock")
	}
}

func TestQueryCost(t *testing.T) {
	m := CostModel{SeekCost: 10 * time.Millisecond, RowCost: time.Millisecond, BucketCost: 2 * time.Millisecond}
	got := m.QueryCost(5, 3)
	want := 10*time.Millisecond + 5*time.Millisecond + 6*time.Millisecond
	if got != want {
		t.Fatalf("QueryCost = %v, want %v", got, want)
	}
	if m.QueryCost(0, 0) != m.SeekCost {
		t.Fatal("empty query must cost exactly the seek cost")
	}
}

func TestChargeAdvancesClock(t *testing.T) {
	m := DefaultCostModel()
	c := NewSimulated(time.Time{})
	t0 := c.Now()
	m.Charge(c, 100, 10)
	if got := c.Now().Sub(t0); got != m.QueryCost(100, 10) {
		t.Fatalf("Charge advanced %v, want %v", got, m.QueryCost(100, 10))
	}
}

func TestDefaultCostModelOrdersOfMagnitude(t *testing.T) {
	m := DefaultCostModel()
	small := m.QueryCost(10, 5)
	big := m.QueryCost(30_000, 700)
	if small > 10*time.Second {
		t.Errorf("bounded window query should take seconds, got %v", small)
	}
	if big < time.Hour {
		t.Errorf("an explosion-scale retrieval should take hours (the paper saw >4h for 30.75K events), got %v", big)
	}
}
