// Command apquery is the forensics side-tool: ad-hoc lookups over a store
// without writing a BDL script. Analysts use it to scope an object before
// excluding it ("the blue team confirmed there were no suspicious
// modifications to the dll files" — Section IV-D) and to eyeball a host's
// activity around a timestamp.
//
// Usage:
//
//	apquery -store ./data -stats
//	apquery -store ./data -objects "java"            # objects matching a pattern
//	apquery -store ./data -events "java.exe" -n 20   # events touching matches
//	apquery -store ./data -around "03/02/2019:14:02:28" -n 10
//
// Combining -stats with a query (-objects, -events, -around) additionally
// prints the store's telemetry snapshot for that query — lookups issued, rows
// examined, buckets pruned — as JSON on stderr, so an analyst can see what a
// lookup cost before turning it into a BDL heuristic.
//
// Like the other tools, -metrics serves /metrics (Prometheus) and
// /debug/telemetry (JSON) for the process lifetime, and -pprof serves
// net/http/pprof (sharing the -metrics mux when the addresses match). -trace
// wraps the lookup in a span and dumps the recent span ring to stderr as
// JSON afterwards. -profile attaches a scatter-gather query profiler: the
// lookup's per-shard breakdown (fanout, rows, busy time, merge time, skew)
// prints to stderr, and with -metrics the live profile is also served at
// /debug/shards. The profiler reads real CPU only — stdout is byte-identical
// with it on or off.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"aptrace"
	"aptrace/internal/bdl"
	"aptrace/internal/event"
)

func main() {
	var (
		storeDir = flag.String("store", "", "store directory (required)")
		stats    = flag.Bool("stats", false, "print store statistics")
		objects  = flag.String("objects", "", "list objects whose name matches the substring")
		events   = flag.String("events", "", "show events touching objects matching the substring")
		around   = flag.String("around", "", "show events around a BDL timestamp (MM/DD/YYYY:HH:MM:SS)")
		n        = flag.Int("n", 20, "row limit")
		metrics  = flag.String("metrics", "", "serve /metrics (Prometheus) and /debug/telemetry (JSON) on this address, e.g. :9090")
		pprofA   = flag.String("pprof", "", "serve net/http/pprof on this address (shares the -metrics mux when the addresses match)")
		trace    = flag.Bool("trace", false, "span the lookup and dump the recent span ring to stderr as JSON")
		profile  = flag.Bool("profile", false, "attach a scatter-gather query profiler and print the per-query breakdown to stderr after the lookup")
	)
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "apquery: -store is required")
		flag.Usage()
		os.Exit(2)
	}
	// With -stats (or -metrics/-trace) alongside a query, a telemetry
	// registry observes the store so the per-query work counters — and with
	// -trace the lookup span — can be dumped afterwards.
	var reg *aptrace.Telemetry
	var opts []aptrace.StoreOption
	if *stats || *metrics != "" || *trace {
		reg = aptrace.NewTelemetry()
		opts = append(opts, aptrace.WithTelemetry(reg))
	}
	// The profiler reads real CPU only: stdout is byte-identical with
	// -profile on or off, the breakdown goes to stderr.
	var qp *aptrace.QueryProfiler
	if *profile {
		qp = aptrace.NewQueryProfiler()
		opts = append(opts, aptrace.WithQueryProfiler(qp))
		if reg != nil {
			// Live JSON view next to the telemetry endpoints; must be
			// mounted before ServeTelemetry builds the mux.
			reg.RegisterDebug("/debug/shards", qp.Handler())
		}
	}
	if *metrics != "" {
		if *pprofA == *metrics {
			// Mount before ServeTelemetry builds the mux.
			reg.RegisterPprof()
		}
		_, addr, err := aptrace.ServeTelemetry(*metrics, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics and /debug/telemetry on %s\n", addr)
	}
	if *pprofA != "" && *pprofA != *metrics {
		_, addr, err := aptrace.ServePprof(*pprofA)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pprof: serving /debug/pprof on %s\n", addr)
	} else if *pprofA != "" {
		fmt.Fprintf(os.Stderr, "pprof: sharing the -metrics mux at /debug/pprof\n")
	}
	st, err := aptrace.OpenStore(*storeDir, nil, opts...)
	if err != nil {
		fatal(err)
	}

	// span wraps one lookup so -trace has something to show; on a nil
	// tracer (no -trace/-stats/-metrics) both calls are free no-ops.
	span := func(name, detail string, op func()) {
		var sp *aptrace.Span
		if *trace {
			sp = reg.Tracer().Start(name, nil)
			sp.SetDetail(detail)
		}
		op()
		sp.End()
	}

	switch {
	case *objects != "":
		span("query.objects", *objects, func() { printObjects(st, *objects, *n) })
	case *events != "":
		span("query.events", *events, func() { printEvents(st, *events, *n) })
	case *around != "":
		span("query.around", *around, func() { printAround(st, *around, *n) })
	case *stats:
		span("query.stats", "", func() { printStats(st) })
		dumpSpans(reg, *trace)
		if qp != nil {
			qp.WriteBreakdown(os.Stderr)
		}
		return
	default:
		fmt.Fprintln(os.Stderr, "apquery: pick one of -stats, -objects, -events, -around")
		os.Exit(2)
	}
	dumpSpans(reg, *trace)
	if qp != nil {
		qp.WriteBreakdown(os.Stderr)
	}
	if *stats {
		fmt.Fprintln(os.Stderr, "\ntelemetry snapshot:")
		enc := json.NewEncoder(os.Stderr)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reg.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "apquery: telemetry snapshot:", err)
		}
	}
}

// dumpSpans prints the registry's recent span ring — the lookup span plus
// any store-internal spans it covered — to stderr as JSON.
func dumpSpans(reg *aptrace.Telemetry, trace bool) {
	if !trace {
		return
	}
	fmt.Fprintln(os.Stderr, "\nrecent spans:")
	enc := json.NewEncoder(os.Stderr)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reg.Tracer().Spans()); err != nil {
		fmt.Fprintln(os.Stderr, "apquery: span dump:", err)
	}
}

func printStats(st *aptrace.Store) {
	s := st.Stats()
	min, max, _ := st.TimeRange()
	fmt.Printf("events:   %d\n", s.Events)
	fmt.Printf("objects:  %d\n", s.Objects)
	fmt.Printf("range:    %s .. %s (%s)\n",
		event.Event{Time: min}.When().Format("2006-01-02 15:04:05"),
		event.Event{Time: max}.When().Format("2006-01-02 15:04:05"),
		st.Duration().Round(1e9))
	// Type breakdown and heavy hitters.
	var nProc, nFile, nSock int
	type hot struct {
		id  aptrace.ObjID
		deg int
	}
	var hots []hot
	for i, o := range st.Objects() {
		switch o.Type {
		case event.ObjProcess:
			nProc++
		case event.ObjFile:
			nFile++
		case event.ObjSocket:
			nSock++
		}
		if d := st.InDegree(aptrace.ObjID(i)); d > 0 {
			hots = append(hots, hot{aptrace.ObjID(i), d})
		}
	}
	fmt.Printf("types:    %d processes, %d files, %d sockets\n", nProc, nFile, nSock)
	// Stats above are whole-store totals regardless of layout; with a
	// sharded store, also show how the log is spread across shards.
	if infos := st.ShardInfos(); len(infos) > 1 {
		fmt.Printf("shards:   %d (host×time epoch %ds)\n", len(infos), st.ShardEpochSeconds())
		for _, si := range infos {
			if si.Events == 0 {
				fmt.Printf("  shard %2d  empty\n", si.Shard)
				continue
			}
			// Queries/rows/busy are runtime heat counters: how hard this
			// process has hit each shard since the store was opened.
			fmt.Printf("  shard %2d  %8d events, %4d hosts, %s .. %s  heat: %d queries, %d rows, %s busy\n",
				si.Shard, si.Events, si.Hosts,
				event.Event{Time: si.MinTime}.When().Format("2006-01-02 15:04:05"),
				event.Event{Time: si.MaxTime}.When().Format("2006-01-02 15:04:05"),
				si.Queries, si.RowsServed, time.Duration(si.BusyNs).Round(time.Microsecond))
		}
	}
	sort.Slice(hots, func(i, j int) bool { return hots[i].deg > hots[j].deg })
	fmt.Println("heaviest objects by fan-in (dependency-explosion candidates):")
	for i, h := range hots {
		if i == 10 {
			break
		}
		fmt.Printf("  %8d  %s\n", h.deg, st.Object(h.id).Label())
	}
}

func matchObjects(st *aptrace.Store, pat string) []aptrace.ObjID {
	needle := strings.ToLower(pat)
	var out []aptrace.ObjID
	for i, o := range st.Objects() {
		if strings.Contains(strings.ToLower(o.Label()), needle) {
			out = append(out, aptrace.ObjID(i))
		}
	}
	return out
}

func printObjects(st *aptrace.Store, pat string, n int) {
	ids := matchObjects(st, pat)
	fmt.Printf("%d objects match %q:\n", len(ids), pat)
	for i, id := range ids {
		if i == n {
			fmt.Printf("  ... and %d more\n", len(ids)-n)
			break
		}
		o := st.Object(id)
		fmt.Printf("  %-60s in-degree %d, out-degree %d\n",
			o.Label(), st.InDegree(id), st.OutDegree(id))
	}
}

func printEvents(st *aptrace.Store, pat string, n int) {
	ids := map[aptrace.ObjID]bool{}
	for _, id := range matchObjects(st, pat) {
		ids[id] = true
	}
	if len(ids) == 0 {
		fmt.Printf("no objects match %q\n", pat)
		return
	}
	shown := 0
	min, max, _ := st.TimeRange()
	st.Scan(min, max+1, func(e aptrace.Event) bool {
		if !ids[e.Subject] && !ids[e.Object] {
			return true
		}
		printEvent(st, e)
		shown++
		return shown < n
	})
	fmt.Fprintf(os.Stderr, "%d events shown (limit %d)\n", shown, n)
}

func printAround(st *aptrace.Store, ts string, n int) {
	at, err := bdl.ParseTime(ts)
	if err != nil {
		fatal(err)
	}
	shown := 0
	st.Scan(at-int64(n), at+int64(n)+1, func(e aptrace.Event) bool {
		printEvent(st, e)
		shown++
		return shown < 2*n
	})
	fmt.Fprintf(os.Stderr, "%d events within ±%ds of %s\n", shown, n, ts)
}

func printEvent(st *aptrace.Store, e aptrace.Event) {
	fmt.Printf("%s  #%d  %-40s --%s(%d)--> %s\n",
		e.When().Format("01-02 15:04:05"), e.ID,
		st.Object(e.Subject).Label(), e.Action, e.Amount,
		st.Object(e.Object).Label())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apquery:", err)
	os.Exit(1)
}
