package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aptrace"
)

func testDataset(t *testing.T) *aptrace.Dataset {
	t.Helper()
	ds, err := aptrace.Generate(aptrace.WorkloadConfig{Seed: 3, Hosts: 2, Days: 1, Density: 0.3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestBatchZeroStarts: a detector rule with no hits is a normal outcome —
// exit clean with a clear message, write no per-alert DOT files.
func TestBatchZeroStarts(t *testing.T) {
	ds := testDataset(t)
	dir := t.TempDir()
	src := fmt.Sprintf(`backward proc p[exename = "no-such-binary-xyz"] -> *
output = %q`, filepath.Join(dir, "graph.dot"))

	var out bytes.Buffer
	if err := runBatch(&out, ds.Store, src, 8, 2, true, nil, "", nil, nil); err != nil {
		t.Fatalf("zero matching starts must not be an error, got: %v", err)
	}
	if !strings.Contains(out.String(), "0 starting events") {
		t.Fatalf("stdout should say so explicitly, got: %q", out.String())
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("no DOT files may be written for an empty batch, found %d", len(ents))
	}
}

// TestDotPathsCollision: duplicate event IDs must be rejected before any
// file is written, not silently overwrite each other's graphs.
func TestDotPathsCollision(t *testing.T) {
	starts := []aptrace.Event{{ID: 1}, {ID: 2}, {ID: 1}}
	if _, err := dotPaths("out.dot", starts); err == nil {
		t.Fatal("colliding event IDs should error")
	} else if !strings.Contains(err.Error(), "out.dot.1") {
		t.Fatalf("error should name the colliding path, got: %v", err)
	}

	paths, err := dotPaths("out.dot", starts[:2])
	if err != nil {
		t.Fatal(err)
	}
	if paths[0] != "out.dot.1" || paths[1] != "out.dot.2" {
		t.Fatalf("unexpected paths: %v", paths)
	}
}

// TestBatchMemoByteIdentical is the CLI-level slice of the charged-cost
// invariant: the summary table on stdout and every per-alert DOT file must
// be byte-identical with the memo cache on and off (simulated clock, so the
// elapsed column is deterministic).
func TestBatchMemoByteIdentical(t *testing.T) {
	ds := testDataset(t)

	run := func(cache *aptrace.MemoCache) (string, map[string]string) {
		dir := t.TempDir()
		src := fmt.Sprintf(`backward proc p[exename = "explorer*"] -> *
where file.path != "*.dll" and time <= 30mins
output = %q`, filepath.Join(dir, "graph.dot"))
		var out bytes.Buffer
		if err := runBatch(&out, ds.Store, src, 8, 4, true, nil, "", nil, cache); err != nil {
			t.Fatal(err)
		}
		dots := make(map[string]string)
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			dots[e.Name()] = string(b)
		}
		return out.String(), dots
	}

	plainOut, plainDots := run(nil)
	if len(plainDots) == 0 {
		t.Fatal("fixture error: the batch should produce per-alert DOT files")
	}
	cache := aptrace.NewMemoCache(0, nil)
	memoOut, memoDots := run(cache)

	if plainOut != memoOut {
		t.Fatalf("stdout diverged with memo on:\n--- off ---\n%s\n--- on ---\n%s", plainOut, memoOut)
	}
	if len(plainDots) != len(memoDots) {
		t.Fatalf("DOT file count diverged: %d vs %d", len(plainDots), len(memoDots))
	}
	for name, want := range plainDots {
		if got, ok := memoDots[name]; !ok || got != want {
			t.Fatalf("DOT %s diverged with memo on", name)
		}
	}
	if cs := cache.Stats(); cs.Hits+cs.Misses == 0 {
		t.Fatalf("cache never consulted: %+v", cs)
	}
}
