// Command aptrace runs responsive backtracking analysis over a persisted
// store, driven by a BDL script.
//
// Usage:
//
//	aptrace -store ./data -script investigate.bdl [-simulate] [-k 8]
//	aptrace -store ./data -script investigate.bdl -batch [-parallel 4]
//	aptrace -store ./data -alerts
//
// With -alerts, the built-in anomaly detector scans the store and lists the
// events that would start an investigation. With -script, the script's
// starting point locates the alert, exploration streams progress to stderr,
// and the final dependency graph goes to the script's "output" path (or
// stdout as DOT if the script has none).
//
// With -batch, the script runs from EVERY event matching its starting point
// — the enterprise triage posture, where one detector rule fires many alerts
// a day. The starting-point scan itself scatters across the store's shards
// (when the store was generated with apgen -shards) before the analyses fan
// out across -parallel workers (0 = all cores), each over its own read view
// of the shared store, and a per-alert summary table goes to stdout in event
// order. If the script names an output path, each alert's graph is written
// as DOT to <output>.<event-id>.
//
// -shards overrides the persisted shard layout at open time: 1 flattens a
// sharded store, N re-partitions a flat one. Either way every result is
// byte-identical — sharding only changes real CPU time.
//
// -qprof attaches the scatter-gather query profiler: every store query the
// run issues is sampled (fanout, per-shard rows and busy time, merge time,
// skew) and the end-of-run per-shard load summary goes to stderr. With
// -metrics the live profile is served at /debug/shards. The profiler reads
// real CPU only — stdout (the Table II summary, DOT output, charged costs)
// is byte-identical with it on or off.
//
// -simulate attaches the query cost model to a virtual clock, reporting
// analysis time in modeled database-latency terms; without it, timings are
// wall clock (the store is in memory, so they are near zero).
//
// With -timeline, the run (or every batch alert, one lane each) is profiled
// into a run timeline: window lifecycle, query costs, graph updates, and
// session pauses, exported as Chrome trace-event JSON (load the file in
// ui.perfetto.dev) and served live at /debug/timeline when -metrics is on.
// The SLO watchdog flags any inter-update gap beyond 3x the -slo target and
// the end-of-run report (stderr) names the offending query, correlated with
// -explain decision records when both are enabled.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"aptrace"
	"aptrace/internal/repl"
	"aptrace/internal/stats"
)

func main() {
	var (
		storeDir  = flag.String("store", "", "store directory (required)")
		script    = flag.String("script", "", "BDL script file")
		alerts    = flag.Bool("alerts", false, "scan the store with the anomaly detector and list alerts")
		simulate  = flag.Bool("simulate", false, "charge the query cost model to a virtual clock")
		k         = flag.Int("k", aptrace.DefaultWindows, "execution-window count")
		quiet     = flag.Bool("quiet", false, "suppress the per-update progress stream")
		doSug     = flag.Bool("suggest", false, "after the run, propose exclusion heuristics for the next script version")
		inter     = flag.Bool("interactive", false, "start the interactive analyst console")
		metrics   = flag.String("metrics", "", "serve /metrics (Prometheus) and /debug/telemetry (JSON) on this address, e.g. :9090")
		batch     = flag.Bool("batch", false, "run the script from every matching starting event (see -parallel)")
		parallel  = flag.Int("parallel", 1, "concurrent analyses in -batch mode (0 = all cores)")
		memoOn    = flag.Bool("memo", false, "share a cross-alert result cache across -batch analyses (identical output, less real CPU)")
		memoBytes = flag.Int64("memo-bytes", 0, "byte budget of the -memo cache (0 = 64 MiB default)")
		explArg   = flag.String("explain", "", "record every analysis decision and explain the result: an object ID, \"all\" (every graph node), \"frontier\" (pruned candidates), or \"on\" (record only, for -interactive); explanations go to stderr")
		pprofA    = flag.String("pprof", "", "serve net/http/pprof on this address (shares the -metrics mux when the addresses match)")
		timelineF = flag.String("timeline", "", "profile the run(s) into a timeline; write the Chrome trace-event JSON to this path")
		gap       = flag.Duration("slo", aptrace.DefaultGapTarget, "SLO inter-update gap target for the -timeline watchdog")
		shards    = flag.Int("shards", 0, "override the store's persisted host×time shard count at open (0 = keep, 1 = flatten)")
		qprofOn   = flag.Bool("qprof", false, "profile scatter-gather queries; the per-shard load summary goes to stderr at end of run (stdout is byte-identical either way)")
	)
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "aptrace: -store is required")
		flag.Usage()
		os.Exit(2)
	}

	var clk aptrace.Clock
	if *simulate {
		clk = aptrace.NewSimulatedClock()
	}
	var reg *aptrace.Telemetry
	var storeOpts []aptrace.StoreOption
	if *metrics != "" {
		reg = aptrace.NewTelemetry()
		aptrace.RegisterRuntimeMetrics(reg)
	}
	var rec *aptrace.ExplainRecorder
	if *explArg != "" {
		rec = aptrace.NewExplainRecorder(0, reg)
		// Mount the decision dump next to the telemetry endpoints; must
		// happen before ServeTelemetry builds the mux.
		reg.RegisterDebug("/debug/explain", rec.Handler())
	}
	var tl *aptrace.TimelineProfiler
	if *timelineF != "" {
		tl = aptrace.NewTimeline(aptrace.TimelineOptions{GapTarget: *gap, Telemetry: reg})
		// Live view of the trace, same mux rule as /debug/explain.
		reg.RegisterDebug("/debug/timeline", tl.Handler())
	}
	var qp *aptrace.QueryProfiler
	if *qprofOn {
		qp = aptrace.NewQueryProfiler()
		storeOpts = append(storeOpts, aptrace.WithQueryProfiler(qp))
		if reg != nil {
			// Live shard-heat view, same mux rule as /debug/explain.
			reg.RegisterDebug("/debug/shards", qp.Handler())
		}
	}
	if reg != nil {
		if *pprofA == *metrics {
			// Same address: mount pprof on the telemetry mux before
			// ServeTelemetry builds it.
			reg.RegisterPprof()
		}
		_, addr, err := aptrace.ServeTelemetry(*metrics, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics and /debug/telemetry on %s\n", addr)
		storeOpts = append(storeOpts, aptrace.WithTelemetry(reg))
	}
	if *pprofA != "" && *pprofA != *metrics {
		_, addr, err := aptrace.ServePprof(*pprofA)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pprof: serving /debug/pprof on %s\n", addr)
	} else if *pprofA != "" {
		fmt.Fprintf(os.Stderr, "pprof: sharing the -metrics mux at /debug/pprof\n")
	}
	if *shards > 0 {
		storeOpts = append(storeOpts, aptrace.WithShards(*shards))
	}
	st, err := aptrace.OpenStore(*storeDir, clk, storeOpts...)
	if err != nil {
		fatal(err)
	}
	if n := st.ShardCount(); n > 1 {
		fmt.Fprintf(os.Stderr, "opened store: %d events, %d objects, %d host×time shards\n", st.NumEvents(), st.NumObjects(), n)
	} else {
		fmt.Fprintf(os.Stderr, "opened store: %d events, %d objects\n", st.NumEvents(), st.NumObjects())
	}

	// qprofSummary prints the end-of-run per-shard load summary to stderr —
	// never stdout, which stays byte-identical with -qprof on or off.
	qprofSummary := func() {
		if qp != nil {
			qp.WriteSummary(os.Stderr)
		}
	}
	if *alerts {
		listAlerts(st)
		qprofSummary()
		return
	}
	if *inter {
		console := repl.New(st, aptrace.ExecOptions{Windows: *k, Telemetry: reg, Explain: rec, Timeline: tl.Lane("console")}, os.Stdout)
		if _, err := console.Run(os.Stdin); err != nil {
			fatal(err)
		}
		if tl != nil {
			writeTimeline(tl, *timelineF, rec)
		}
		qprofSummary()
		return
	}
	if *script == "" {
		fmt.Fprintln(os.Stderr, "aptrace: one of -script, -alerts, or -interactive is required")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*script)
	if err != nil {
		fatal(err)
	}
	if *batch {
		if *parallel <= 0 {
			*parallel = runtime.GOMAXPROCS(0)
		}
		var cache *aptrace.MemoCache
		if *memoOn {
			cache = aptrace.NewMemoCache(*memoBytes, reg)
		}
		if err := runBatch(os.Stdout, st, string(raw), *k, *parallel, *simulate, reg, *explArg, tl, cache); err != nil {
			fatal(err)
		}
	} else {
		runScript(st, string(raw), *k, *quiet, *doSug, reg, rec, *explArg, tl)
	}
	if tl != nil {
		writeTimeline(tl, *timelineF, rec)
	}
	qprofSummary()
	dumpTelemetry(reg)
}

// writeTimeline exports the profiler's trace and prints the SLO report to
// stderr, correlating stalls against the decision recorder when -explain ran.
func writeTimeline(tl *aptrace.TimelineProfiler, path string, rec *aptrace.ExplainRecorder) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := tl.WriteTrace(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "\ntimeline: trace written to %s (load in ui.perfetto.dev)\n", path)
	var recs []aptrace.ExplainRecord
	if rec != nil {
		recs = rec.Records()
	}
	tl.Report().Print(os.Stderr, recs)
}

// runBatch runs the script from every event matching its starting point,
// fanning the analyses over a bounded pool. Each run gets a private read
// view of the store (own clock and counters, shared event log), so the runs
// neither contend nor interfere; the summary table is printed in event
// order, independent of scheduling. A non-nil cache is shared by every run
// of the batch: closures one alert's backtrack computes are reused by the
// next, with identical charged cost either way.
func runBatch(stdout io.Writer, st *aptrace.Store, src string, k, workers int, simulate bool, reg *aptrace.Telemetry, explArg string, tl *aptrace.TimelineProfiler, cache *aptrace.MemoCache) error {
	plan, err := aptrace.CompileScript(src)
	if err != nil {
		return err
	}
	min, max, ok := st.TimeRange()
	if !ok {
		return fmt.Errorf("store is empty")
	}
	from, to := plan.Range(min, max)
	// CollectMatches scatters the starting-point scan across the store's
	// shards (each scan task gets its own compiled plan, since plan state is
	// per scan) and merges the hits back into global event order — on a flat
	// store it degenerates to the plain serial scan. Charged cost and match
	// list are byte-identical either way.
	starts, err := st.CollectMatches(from, to, func() func(aptrace.Event) (bool, error) {
		p, perr := aptrace.CompileScript(src)
		return func(e aptrace.Event) (bool, error) {
			if perr != nil {
				return false, perr
			}
			return p.MatchStart(e, st)
		}
	})
	if err != nil {
		return err
	}
	if len(starts) == 0 {
		// An empty triage batch is a normal outcome (the detector rule
		// simply has no hits today), not an error: say so, write nothing,
		// exit clean.
		fmt.Fprintln(stdout, "batch: 0 starting events match the script's starting point; nothing to do")
		return nil
	}
	// The per-alert DOT naming scheme is <output>.<event-id>; event IDs are
	// unique within one store, but fail loudly before running anything —
	// rather than silently overwriting a graph — if that assumption is
	// ever violated.
	var paths []string
	if plan.Output != "" {
		if paths, err = dotPaths(plan.Output, starts); err != nil {
			return err
		}
	}

	pool := aptrace.NewFleet(workers, reg)
	fmt.Fprintf(os.Stderr, "batch: %d starting events across %d workers\n", len(starts), pool.Workers())

	type outcome struct {
		reason  string
		edges   int
		nodes   int
		windows int
		elapsed time.Duration
		graph   *aptrace.Graph
		rec     *aptrace.ExplainRecorder // per-run recorder (nil unless -explain)
	}
	wall := time.Now()
	// Lanes are pre-allocated by alert index — the trace cannot depend on
	// which worker ran which alert. FleetMapTimeline hands each job its lane
	// (nil, and therefore free, when -timeline is off).
	runs, err := aptrace.FleetMapTimeline(pool, len(starts), tl, "alert", func(i int, lane *aptrace.TimelineRecorder) (outcome, error) {
		var clk aptrace.Clock
		if simulate {
			clk = aptrace.NewSimulatedClock()
		}
		view, err := st.View(clk)
		if err != nil {
			return outcome{}, err
		}
		// Compile privately: plan state (quantity-rule maintainers) is
		// per analysis, not shared across the fleet.
		p, err := aptrace.CompileScript(src)
		if err != nil {
			return outcome{}, err
		}
		// One recorder per analysis (the counters are shared): decision
		// traces stay per-run, so fleet scheduling cannot interleave them.
		var rec *aptrace.ExplainRecorder
		if explArg != "" {
			rec = aptrace.NewExplainRecorder(0, reg)
		}
		x, err := aptrace.NewExecutor(view, p, aptrace.ExecOptions{Windows: k, Telemetry: reg, Explain: rec, Timeline: lane, Memo: cache})
		if err != nil {
			return outcome{}, err
		}
		res, err := x.Run(starts[i])
		if err != nil {
			return outcome{}, err
		}
		return outcome{
			reason:  fmt.Sprint(res.Reason),
			edges:   res.Graph.NumEdges(),
			nodes:   res.Graph.NumNodes(),
			windows: res.Windows,
			elapsed: res.Elapsed,
			graph:   res.Graph,
			rec:     rec,
		}, nil
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "%-22s %-9s %-22s %8s %8s %8s %10s\n",
		"time (UTC)", "event id", "reason", "events", "nodes", "windows", "elapsed")
	for i, r := range runs {
		fmt.Fprintf(stdout, "%-22s %-9d %-22s %8d %8d %8d %10s\n",
			starts[i].When().Format("2006-01-02 15:04:05"), starts[i].ID,
			r.reason, r.edges, r.nodes, r.windows, r.elapsed.Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "%d analyses in %.1fs wall\n", len(runs), time.Since(wall).Seconds())
	if cache != nil {
		// Cache effectiveness goes to stderr: stdout must stay
		// byte-identical with the memo on or off.
		cs := cache.Stats()
		fmt.Fprintf(os.Stderr, "memo: %d hits, %d misses (%.1f%% hit rate), %d bytes held, %d evictions\n",
			cs.Hits, cs.Misses, 100*cs.HitRate(), cs.Bytes, cs.Evictions)
	}

	if explArg != "" {
		for i, r := range runs {
			fmt.Fprintf(os.Stderr, "\n--- event %d ---\n", starts[i].ID)
			explainReport(os.Stderr, st, r.rec, r.graph, explArg)
		}
	}

	if plan.Output != "" {
		for i, r := range runs {
			f, err := os.Create(paths[i])
			if err != nil {
				return err
			}
			// With -explain the DOT carries the prune frontier: dashed gray
			// nodes for the candidates the analysis decided against.
			var werr error
			if r.rec != nil {
				werr = aptrace.WriteDOTAnnotated(f, r.graph, st.Object, aptrace.PruneFrontierAnnotations(r.rec))
			} else {
				werr = aptrace.WriteDOT(f, r.graph, st.Object)
			}
			if werr != nil {
				f.Close()
				return werr
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "%d graphs written to %s.<event-id>\n", len(runs), plan.Output)
	}
	return nil
}

// dotPaths derives the per-alert DOT output path for every starting event
// and errors if any two collide (duplicate event IDs would silently
// overwrite one another's graphs otherwise).
func dotPaths(output string, starts []aptrace.Event) ([]string, error) {
	paths := make([]string, len(starts))
	seen := make(map[string]aptrace.EventID, len(starts))
	for i, ev := range starts {
		p := fmt.Sprintf("%s.%d", output, ev.ID)
		if prev, dup := seen[p]; dup {
			return nil, fmt.Errorf("DOT output path %s collides: starting events %d and %d map to the same file", p, prev, ev.ID)
		}
		seen[p] = ev.ID
		paths[i] = p
	}
	return paths, nil
}

// dumpTelemetry writes the end-of-run metrics snapshot to stderr as JSON so
// a scripted run leaves a machine-readable record even when nothing
// scraped the HTTP endpoint.
func dumpTelemetry(reg *aptrace.Telemetry) {
	if reg == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "\ntelemetry snapshot:")
	enc := json.NewEncoder(os.Stderr)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reg.Snapshot()); err != nil {
		fmt.Fprintln(os.Stderr, "aptrace: telemetry snapshot:", err)
	}
}

func listAlerts(st *aptrace.Store) {
	det := aptrace.NewDetector()
	found, err := det.Scan(st, 0, 1<<62)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-22s %-16s %-9s %s\n", "time (UTC)", "rule", "event id", "detail")
	for _, a := range found {
		fmt.Printf("%-22s %-16s %-9d %s\n",
			a.Event.When().Format("2006-01-02 15:04:05"), a.Rule, a.Event.ID, a.Message)
	}
	fmt.Fprintf(os.Stderr, "%d alerts\n", len(found))
}

func runScript(st *aptrace.Store, src string, k int, quiet, doSuggest bool, reg *aptrace.Telemetry, rec *aptrace.ExplainRecorder, explArg string, tl *aptrace.TimelineProfiler) {
	var times []time.Time
	sess := aptrace.NewSession(st, aptrace.ExecOptions{
		Windows:   k,
		Telemetry: reg,
		Explain:   rec,
		Timeline:  tl.Lane("run"),
		OnUpdate: func(u aptrace.Update) {
			times = append(times, u.At)
			if quiet {
				return
			}
			o := st.Object(u.Event.Src())
			fmt.Fprintf(os.Stderr, "[%s] + %s --%s--> graph now %d events\n",
				u.At.Format("15:04:05"), o.Label(), u.Event.Action, u.Edges)
		},
	})
	if err := sess.Start(src, nil); err != nil {
		fatal(err)
	}
	res, err := sess.Wait()
	if err != nil {
		fatal(err)
	}
	pruned, err := sess.Finalize()
	if err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "\nanalysis %s: %d events, %d nodes (pruned %d), %d windows, elapsed %s\n",
		res.Reason, res.Graph.NumEdges(), res.Graph.NumNodes(), pruned, res.Windows, res.Elapsed.Round(time.Millisecond))
	if rec != nil {
		explainReport(os.Stderr, st, rec, res.Graph, explArg)
	}
	if ds := stats.Deltas(stats.DistinctTimes(times)); len(ds) > 0 {
		xs := stats.Durations(ds)
		ps := stats.Percentiles(xs, 0.5, 0.9, 0.99)
		fmt.Fprintf(os.Stderr, "update gaps: median %.2fs, p90 %.2fs, p99 %.2fs\n", ps[0], ps[1], ps[2])
	}

	if doSuggest {
		sugs := aptrace.SuggestHeuristics(res.Graph, st, 6)
		if len(sugs) > 0 {
			fmt.Fprintln(os.Stderr, "\nsuggested heuristics for the next version (verify before applying):")
			for _, s := range sugs {
				fmt.Fprintf(os.Stderr, "  %-40s -- %s\n", s.Clause, s.Reason)
			}
		}
	}

	// The script's output clause was honored by Finalize; if there was
	// none, emit DOT on stdout so the tool is still composable.
	plan, err := aptrace.CompileScript(src)
	if err == nil && plan.Output == "" {
		if err := aptrace.WriteDOT(os.Stdout, res.Graph, st.Object); err != nil {
			fatal(err)
		}
	} else if plan != nil {
		fmt.Fprintf(os.Stderr, "graph written to %s\n", plan.Output)
	}
}

// explainReport prints decision-trace justifications to w. arg selects the
// scope: "all" explains every graph node and appends the prune frontier,
// "frontier" prints only the pruned candidates, a numeric object ID explains
// that one object, and anything else (e.g. "on") prints just the recorder
// stats line.
func explainReport(w io.Writer, st *aptrace.Store, rec *aptrace.ExplainRecorder, g *aptrace.Graph, arg string) {
	if rec == nil {
		return
	}
	label := func(id aptrace.ObjID) string { return st.Object(id).Label() }
	emitted, dropped := rec.Stats()
	fmt.Fprintf(w, "\ndecision trace: %d records (%d overwritten by ring overflow)\n", emitted, dropped)
	printFrontier := func() {
		frontier := rec.PruneFrontier()
		if len(frontier) == 0 {
			return
		}
		fmt.Fprintf(w, "prune frontier (%d candidates excluded):\n", len(frontier))
		for _, p := range frontier {
			fmt.Fprintf(w, "  %-40s %s\n", label(p.Node), p.Reason)
		}
	}
	switch arg {
	case "all":
		if g != nil {
			for _, n := range g.Nodes() {
				fmt.Fprintf(w, "%s (object %d):\n", label(n.ID), n.ID)
				for _, line := range strings.Split(strings.TrimRight(rec.Explain(n.ID).Justification(label), "\n"), "\n") {
					fmt.Fprintf(w, "  %s\n", line)
				}
			}
		}
		printFrontier()
	case "frontier":
		printFrontier()
	default:
		if id, err := strconv.ParseUint(arg, 10, 32); err == nil {
			fmt.Fprint(w, rec.Explain(aptrace.ObjID(id)).Justification(label))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aptrace:", err)
	os.Exit(1)
}
