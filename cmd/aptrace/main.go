// Command aptrace runs responsive backtracking analysis over a persisted
// store, driven by a BDL script.
//
// Usage:
//
//	aptrace -store ./data -script investigate.bdl [-simulate] [-k 8]
//	aptrace -store ./data -alerts
//
// With -alerts, the built-in anomaly detector scans the store and lists the
// events that would start an investigation. With -script, the script's
// starting point locates the alert, exploration streams progress to stderr,
// and the final dependency graph goes to the script's "output" path (or
// stdout as DOT if the script has none).
//
// -simulate attaches the query cost model to a virtual clock, reporting
// analysis time in modeled database-latency terms; without it, timings are
// wall clock (the store is in memory, so they are near zero).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"aptrace"
	"aptrace/internal/repl"
	"aptrace/internal/stats"
)

func main() {
	var (
		storeDir = flag.String("store", "", "store directory (required)")
		script   = flag.String("script", "", "BDL script file")
		alerts   = flag.Bool("alerts", false, "scan the store with the anomaly detector and list alerts")
		simulate = flag.Bool("simulate", false, "charge the query cost model to a virtual clock")
		k        = flag.Int("k", aptrace.DefaultWindows, "execution-window count")
		quiet    = flag.Bool("quiet", false, "suppress the per-update progress stream")
		doSug    = flag.Bool("suggest", false, "after the run, propose exclusion heuristics for the next script version")
		inter    = flag.Bool("interactive", false, "start the interactive analyst console")
		metrics  = flag.String("metrics", "", "serve /metrics (Prometheus) and /debug/telemetry (JSON) on this address, e.g. :9090")
	)
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "aptrace: -store is required")
		flag.Usage()
		os.Exit(2)
	}

	var clk aptrace.Clock
	if *simulate {
		clk = aptrace.NewSimulatedClock()
	}
	var reg *aptrace.Telemetry
	var storeOpts []aptrace.StoreOption
	if *metrics != "" {
		reg = aptrace.NewTelemetry()
		_, addr, err := aptrace.ServeTelemetry(*metrics, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics and /debug/telemetry on %s\n", addr)
		storeOpts = append(storeOpts, aptrace.WithTelemetry(reg))
	}
	st, err := aptrace.OpenStore(*storeDir, clk, storeOpts...)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "opened store: %d events, %d objects\n", st.NumEvents(), st.NumObjects())

	if *alerts {
		listAlerts(st)
		return
	}
	if *inter {
		console := repl.New(st, aptrace.ExecOptions{Windows: *k, Telemetry: reg}, os.Stdout)
		if _, err := console.Run(os.Stdin); err != nil {
			fatal(err)
		}
		return
	}
	if *script == "" {
		fmt.Fprintln(os.Stderr, "aptrace: one of -script, -alerts, or -interactive is required")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*script)
	if err != nil {
		fatal(err)
	}
	runScript(st, string(raw), *k, *quiet, *doSug, reg)
	dumpTelemetry(reg)
}

// dumpTelemetry writes the end-of-run metrics snapshot to stderr as JSON so
// a scripted run leaves a machine-readable record even when nothing
// scraped the HTTP endpoint.
func dumpTelemetry(reg *aptrace.Telemetry) {
	if reg == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "\ntelemetry snapshot:")
	enc := json.NewEncoder(os.Stderr)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reg.Snapshot()); err != nil {
		fmt.Fprintln(os.Stderr, "aptrace: telemetry snapshot:", err)
	}
}

func listAlerts(st *aptrace.Store) {
	det := aptrace.NewDetector()
	found, err := det.Scan(st, 0, 1<<62)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-22s %-16s %-9s %s\n", "time (UTC)", "rule", "event id", "detail")
	for _, a := range found {
		fmt.Printf("%-22s %-16s %-9d %s\n",
			a.Event.When().Format("2006-01-02 15:04:05"), a.Rule, a.Event.ID, a.Message)
	}
	fmt.Fprintf(os.Stderr, "%d alerts\n", len(found))
}

func runScript(st *aptrace.Store, src string, k int, quiet, doSuggest bool, reg *aptrace.Telemetry) {
	var times []time.Time
	sess := aptrace.NewSession(st, aptrace.ExecOptions{
		Windows:   k,
		Telemetry: reg,
		OnUpdate: func(u aptrace.Update) {
			times = append(times, u.At)
			if quiet {
				return
			}
			o := st.Object(u.Event.Src())
			fmt.Fprintf(os.Stderr, "[%s] + %s --%s--> graph now %d events\n",
				u.At.Format("15:04:05"), o.Label(), u.Event.Action, u.Edges)
		},
	})
	if err := sess.Start(src, nil); err != nil {
		fatal(err)
	}
	res, err := sess.Wait()
	if err != nil {
		fatal(err)
	}
	pruned, err := sess.Finalize()
	if err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "\nanalysis %s: %d events, %d nodes (pruned %d), %d windows, elapsed %s\n",
		res.Reason, res.Graph.NumEdges(), res.Graph.NumNodes(), pruned, res.Windows, res.Elapsed.Round(time.Millisecond))
	if ds := stats.Deltas(stats.DistinctTimes(times)); len(ds) > 0 {
		xs := stats.Durations(ds)
		ps := stats.Percentiles(xs, 0.5, 0.9, 0.99)
		fmt.Fprintf(os.Stderr, "update gaps: median %.2fs, p90 %.2fs, p99 %.2fs\n", ps[0], ps[1], ps[2])
	}

	if doSuggest {
		sugs := aptrace.SuggestHeuristics(res.Graph, st, 6)
		if len(sugs) > 0 {
			fmt.Fprintln(os.Stderr, "\nsuggested heuristics for the next version (verify before applying):")
			for _, s := range sugs {
				fmt.Fprintf(os.Stderr, "  %-40s -- %s\n", s.Clause, s.Reason)
			}
		}
	}

	// The script's output clause was honored by Finalize; if there was
	// none, emit DOT on stdout so the tool is still composable.
	plan, err := aptrace.CompileScript(src)
	if err == nil && plan.Output == "" {
		if err := aptrace.WriteDOT(os.Stdout, res.Graph, st.Object); err != nil {
			fatal(err)
		}
	} else if plan != nil {
		fmt.Fprintf(os.Stderr, "graph written to %s\n", plan.Output)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aptrace:", err)
	os.Exit(1)
}
