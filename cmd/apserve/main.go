// Command apserve is the always-on triage daemon: the deployment shape of
// the paper's system. It ingests audit event streams into a WAL-durable
// live store, runs the anomaly detectors incrementally on the live tail,
// auto-launches a backtracking investigation per alert on the analysis
// fleet, and serves the JSON/SSE triage API.
//
// Usage:
//
//	apserve -addr :8080 -store ./livedata [-tail audit.log] [-detect 2s]
//	        [-auto] [-hops 10] [-auto-budget 0] [-workers 0]
//	        [-max-active 4] [-max-queued 8]
//	        [-queue 64] [-k 8] [-retry-after 2s] [-drain-timeout 10s]
//	        [-retain-sessions 512] [-retain-alerts 4096]
//	        [-sample] [-sample-hosts 4] [-sample-days 3] [-sample-density 0.5]
//	        [-metrics addr] [-pprof]
//	        [-journal out.ndjson] [-journal-level info] [-journal-sample 16]
//	        [-ops-rules "quota_429_rate>0.5,..."] [-watchdog 5s]
//
// -journal enables the correlated alert-lifecycle journal: every ingest
// batch mints a correlation ID that threads through detection, the
// auto-launched session, its executor milestones, SSE delivery, and
// eviction — queryable live at GET /debug/journal?corr=... and written as
// NDJSON to the given path ("-" for stdout). -ops-rules configures the
// self-watchdog's SLO rules ("off" disables them); violations land in the
// journal and aptrace_ops_alerts_total. GET /readyz reports per-component
// readiness and GET /ops the operator summary (SLIs, watchdog, subscribers).
//
// With -sample, a synthetic enterprise workload is generated and streamed
// through the ingest path at startup, so the daemon is immediately
// explorable (this is what the CI smoke test drives). SIGTERM/SIGINT
// triggers the graceful drain: stop accepting sessions, stop active
// analyses (their partial graphs finalize), flush the WAL, report, exit 0.
//
// API (also mounted: /metrics, /debug/telemetry, and -pprof's /debug/pprof):
//
//	POST /api/v1/ingest                  NDJSON audit records (ETW/auditd)
//	POST /api/v1/sessions                {"tenant","script","event_id"}
//	GET  /api/v1/sessions                list sessions
//	GET  /api/v1/sessions/{id}/updates   graph deltas as SSE
//	GET  /api/v1/sessions/{id}/explain   decision records
//	GET  /api/v1/sessions/{id}/timeline  Chrome trace-event JSON
//	POST /api/v1/sessions/{id}/pause|resume|stop
//	GET  /api/v1/alerts, GET /healthz
//	GET  /debug/shards                   shard layout + scatter-gather heat
//
// /debug/shards (also mirrored on the -metrics address) reports the live
// snapshot's shard layout with per-shard heat counters and the daemon-wide
// scatter-gather query profile: every session query is sampled into a
// per-shard × epoch heatmap with fanout and skew quantiles.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aptrace"
	"aptrace/internal/memo"
	"aptrace/internal/obs"
	"aptrace/internal/serve"
	"aptrace/internal/store"
)

// memoBudget resolves the -memo/-memo-bytes pair into a serve.Config
// budget: 0 keeps the cache off, -memo alone takes the package default.
func memoBudget(on bool, bytes int64) int64 {
	if !on && bytes <= 0 {
		return 0
	}
	if bytes <= 0 {
		return memo.DefaultMaxBytes
	}
	return bytes
}

func main() {
	log.SetFlags(0)
	var (
		addr     = flag.String("addr", ":8080", "API listen address")
		dir      = flag.String("store", "", "live store directory (default: a temp dir)")
		tailF    = flag.String("tail", "", "follow this audit log file (ETW/auditd lines)")
		detect   = flag.Duration("detect", 2*time.Second, "detection pass interval (0 disables)")
		auto     = flag.Bool("auto", true, "auto-launch a backtracking session per alert")
		hops     = flag.Int("hops", 10, "hop budget for auto-launched scripts")
		budget   = flag.Duration("auto-budget", 0, "analysis time budget for auto-launched scripts (0 = hop-bounded only)")
		workers  = flag.Int("workers", 0, "concurrent analyses (0 = all cores)")
		maxAct   = flag.Int("max-active", 4, "per-tenant max concurrent sessions")
		maxQ     = flag.Int("max-queued", 8, "per-tenant max queued sessions")
		queue    = flag.Int("queue", 64, "global session queue capacity")
		k        = flag.Int("k", aptrace.DefaultWindows, "execution-window count")
		retry    = flag.Duration("retry-after", 2*time.Second, "Retry-After hint on 429")
		retainS  = flag.Int("retain-sessions", 512, "finished sessions kept queryable (-1 = unlimited)")
		retainA  = flag.Int("retain-alerts", 4096, "alerts kept in the log (-1 = unlimited)")
		drainT   = flag.Duration("drain-timeout", 10*time.Second, "graceful drain budget on SIGTERM")
		sample   = flag.Bool("sample", false, "bootstrap with a generated sample workload")
		sHosts   = flag.Int("sample-hosts", 4, "sample workload: hosts")
		sDays    = flag.Int("sample-days", 3, "sample workload: days")
		sDensity = flag.Float64("sample-density", 0.5, "sample workload: density")
		metricsA = flag.String("metrics", "", "also serve /metrics on this separate address")
		pprofF   = flag.Bool("pprof", false, "mount /debug/pprof on the API mux")
		memoOn   = flag.Bool("memo", false, "share a backward-closure memo cache across sessions (reset on reseal; charged cost unchanged)")
		memoB    = flag.Int64("memo-bytes", 0, "memo cache byte budget (0 with -memo = 64 MiB default)")
		journalF = flag.String("journal", "", "write the alert-lifecycle journal (NDJSON) to this path (\"-\" = stdout; empty disables)")
		jLevel   = flag.String("journal-level", "info", "journal level: debug|info|warn|error")
		jSample  = flag.Int("journal-sample", 0, "keep 1-in-N debug entries per stage after the burst (0 = default 16)")
		opsRules = flag.String("ops-rules", "", "watchdog SLO rules, e.g. \"quota_429_rate>0.5,detect_stall>30s\" (empty = defaults, \"off\" disables)")
		watchdog = flag.Duration("watchdog", 5*time.Second, "self-watchdog evaluation interval (0 disables)")
	)
	flag.Parse()

	reg := aptrace.NewTelemetry()
	// An always-on daemon wants its own runtime vitals on every scrape.
	aptrace.RegisterRuntimeMetrics(reg)
	if *pprofF {
		reg.RegisterPprof()
	}

	var journal *obs.Journal
	if *journalF != "" {
		level, err := obs.ParseLevel(*jLevel)
		if err != nil {
			log.Fatalf("apserve: -journal-level: %v", err)
		}
		out := io.Writer(os.Stdout)
		if *journalF != "-" {
			f, err := os.Create(*journalF)
			if err != nil {
				log.Fatalf("apserve: -journal: %v", err)
			}
			defer f.Close()
			out = f
		}
		journal = obs.New(obs.Options{
			Level:       level,
			Out:         out,
			SampleEvery: *jSample,
			Telemetry:   reg,
		})
	}
	rules, err := obs.ParseRules(*opsRules)
	if err != nil {
		log.Fatalf("apserve: -ops-rules: %v", err)
	}
	if rules == nil {
		// "off": keep the watchdog baseline ticking with zero rules
		// (Config treats nil as "use the defaults").
		rules = []obs.Rule{}
	}

	if *dir == "" {
		tmp, err := os.MkdirTemp("", "apserve-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		*dir = tmp
	}
	live, err := store.OpenLive(*dir, nil, store.WithTelemetry(reg))
	if err != nil {
		log.Fatal(err)
	}
	defer live.Close()

	srv, err := serve.New(serve.Config{
		Live:           live,
		DetectEvery:    *detect,
		AutoBacktrack:  *auto,
		AutoHops:       *hops,
		AutoBudget:     *budget,
		Workers:        *workers,
		QueueCap:       *queue,
		Quota:          serve.Quota{MaxActive: *maxAct, MaxQueued: *maxQ},
		RetryAfter:     *retry,
		RetainSessions: *retainS,
		RetainAlerts:   *retainA,
		Windows:        *k,
		MemoBytes:      memoBudget(*memoOn, *memoB),
		Telemetry:      reg,
		Journal:        journal,
		OpsRules:       rules,
		WatchdogEvery:  *watchdog,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *sample {
		ds, err := aptrace.Generate(aptrace.WorkloadConfig{
			Seed: 2, Hosts: *sHosts, Days: *sDays, Density: *sDensity,
		}, nil)
		if err != nil {
			log.Fatal(err)
		}
		var wire bytes.Buffer
		if _, err := aptrace.ExportAudit(ds.Store, &wire, aptrace.FormatAuditd); err != nil {
			log.Fatal(err)
		}
		stats, err := srv.IngestReader(&wire)
		if err != nil {
			log.Fatal(err)
		}
		if err := live.Checkpoint(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("apserve: sample workload ingested: %d records (%d rejected)\n",
			stats.Ingested, stats.Rejected)
	}

	httpSrv, bound, err := srv.Serve(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("apserve: listening on http://%s (store %s)\n", bound, *dir)
	if *metricsA != "" {
		// Mirror the shard-heat profile on the metrics mux so operators
		// scraping the side address can read it without touching the API.
		reg.RegisterDebug("/debug/shards", srv.QueryProfiler().Handler())
		_, maddr, err := aptrace.ServeTelemetry(*metricsA, reg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("apserve: metrics on http://%s\n", maddr)
	}

	tailCtx, cancelTail := context.WithCancel(context.Background())
	tailErr := make(chan error, 1)
	if *tailF != "" {
		go func() { tailErr <- srv.Tail(tailCtx, *tailF, 0) }()
		fmt.Printf("apserve: tailing %s\n", *tailF)
	}

	srv.Start()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		fmt.Printf("apserve: %s: draining (budget %s)\n", s, *drainT)
	case err := <-tailErr:
		if err != nil {
			log.Printf("apserve: tail failed: %v; draining", err)
		}
	}

	cancelTail()
	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	rep := srv.Drain(ctx)
	httpSrv.Shutdown(ctx)
	fmt.Printf("apserve: drained: %d active stopped, %d queued aborted, clean=%v in %s\n",
		rep.Stopped, rep.Aborted, rep.Clean, rep.Took.Round(time.Millisecond))
	if err := live.Close(); err != nil {
		log.Fatal(err)
	}
	if !rep.Clean {
		os.Exit(1)
	}
}
