// Command apgen builds a synthetic enterprise audit dataset — the stand-in
// for the paper's 256-host production deployment — and persists it as an
// APTrace store directory plus an attacks.json ground-truth file.
//
// Usage:
//
//	apgen -out ./data [-hosts 8] [-days 7] [-density 1.0] [-seed 1]
//	      [-shards 1] [-attacks phishing,excel-macro,...] [-export etw|auditd]
//
// -shards N partitions the store by host × time epoch into N shards that
// seal in parallel and answer queries by scatter-gather; the shard count is
// persisted in the store manifest, so downstream tools reopen it sharded
// automatically. Query results are byte-identical to a flat store — at
// fleet scale (-hosts 64 and up) sharding only cuts real seal and
// backtracking wall-clock time.
//
// The attacks.json file records, for every injected scenario, the alert
// event, the root-cause object, the ground-truth causal chain, and the BDL
// script versions an analyst would apply (usable directly with cmd/aptrace).
//
// Like the other tools, -metrics serves /metrics (Prometheus, including Go
// runtime metrics) and /debug/telemetry (JSON) for the process lifetime —
// brought up before generation, so the parallel seal of a large fleet can be
// watched live — and -pprof serves net/http/pprof (sharing the -metrics mux
// when the addresses match).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"aptrace"
)

func main() {
	var (
		out     = flag.String("out", "", "output store directory (required)")
		hosts   = flag.Int("hosts", 8, "number of monitored workstations")
		days    = flag.Int("days", 7, "days of recorded history")
		density = flag.Float64("density", 1.0, "background activity scale (1.0 ~ 2000 events/host/day)")
		seed    = flag.Int64("seed", 1, "generator seed")
		shards  = flag.Int("shards", 1, "host×time store shards (1 = flat; persisted in the manifest)")
		attacks = flag.String("attacks", "", "comma-separated attack subset (default: all five)")
		export  = flag.String("export", "", "also export raw audit records: etw or auditd")
		metrics = flag.String("metrics", "", "serve /metrics (Prometheus) and /debug/telemetry (JSON) on this address, e.g. :9090")
		pprofA  = flag.String("pprof", "", "serve net/http/pprof on this address (shares the -metrics mux when the addresses match)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "apgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	// Telemetry comes up before generation so the expensive part — the
	// parallel seal — is observable live (Go runtime metrics, pprof).
	var reg *aptrace.Telemetry
	if *metrics != "" {
		reg = aptrace.NewTelemetry()
		aptrace.RegisterRuntimeMetrics(reg)
		if *pprofA == *metrics {
			// Mount before ServeTelemetry builds the mux.
			reg.RegisterPprof()
		}
		_, addr, err := aptrace.ServeTelemetry(*metrics, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics and /debug/telemetry on %s\n", addr)
	}
	if *pprofA != "" && *pprofA != *metrics {
		_, addr, err := aptrace.ServePprof(*pprofA)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pprof: serving /debug/pprof on %s\n", addr)
	} else if *pprofA != "" {
		fmt.Fprintf(os.Stderr, "pprof: sharing the -metrics mux at /debug/pprof\n")
	}

	cfg := aptrace.WorkloadConfig{Seed: *seed, Hosts: *hosts, Days: *days, Density: *density, Shards: *shards}
	if *attacks != "" {
		cfg.Attacks = strings.Split(*attacks, ",")
	}

	ds, err := aptrace.Generate(cfg, nil)
	if err != nil {
		fatal(err)
	}
	if reg != nil {
		// Observe the sealed store too, so the export scan's query counters
		// show up in /debug/telemetry for the rest of the process lifetime.
		ds.Store.SetTelemetry(reg)
	}
	fmt.Printf("generated %d events, %d objects across %d hosts over %d days\n",
		ds.Store.NumEvents(), ds.Store.NumObjects(), *hosts, *days)
	if n := ds.Store.ShardCount(); n > 1 {
		fmt.Printf("sealed %d host×time shards in %.2fs wall\n", n, ds.SealWall.Seconds())
	}

	if err := ds.Store.Save(*out); err != nil {
		fatal(err)
	}
	meta, err := json.MarshalIndent(ds.Attacks, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(*out, "attacks.json"), meta, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("store written to %s (attacks.json has %d scenarios)\n", *out, len(ds.Attacks))

	if *export != "" {
		var f aptrace.AuditFormat
		switch *export {
		case "etw":
			f = aptrace.FormatETW
		case "auditd":
			f = aptrace.FormatAuditd
		default:
			fatal(fmt.Errorf("unknown export format %q", *export))
		}
		path := filepath.Join(*out, "audit."+*export+".log")
		fh, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		n, err := aptrace.ExportAudit(ds.Store, fh, f)
		if cerr := fh.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("exported %d raw audit records to %s\n", n, path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apgen:", err)
	os.Exit(1)
}
