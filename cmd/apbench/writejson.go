package main

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// writeJSON atomically persists one experiment's structured result. The
// bytes land in a uniquely named temp file in the destination directory
// (os.CreateTemp, so concurrent apbench runs writing sibling BENCH_*.json
// files can never collide on a shared temp name), and the rename happens
// only after a successful write and close — an error on any step removes
// the temp file and leaves a pre-existing destination untouched.
func writeJSON(path string, v any) (err error) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(append(buf, '\n')); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Chmod(tmp, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
