// Command apbench regenerates the paper's evaluation (Section IV): every
// table and figure, over a freshly generated synthetic enterprise dataset
// bound to the simulated query-latency clock.
//
// Usage:
//
//	apbench [-exp all|severity|fig4|table1|table2|fig6|timeline|ablation-k|ablation-policy|perf|serve|memo|obs|shard|qprof]
//	        [-hosts 12] [-days 10] [-density 1.5] [-samples 200] [-cap 2h] [-k 8]
//	        [-parallel 1] [-shards 1] [-json dir] [-metrics addr] [-pprof addr]
//	        [-timeline trace.json] [-benchtime 3x]
//
// With -json, each experiment's structured result is also written as
// BENCH_<exp>.json in the given directory, so perf trajectories can be
// tracked across revisions. With -metrics, a telemetry registry is wired
// through the store and every executor, served at /metrics (Prometheus
// text) and /debug/telemetry (JSON) for the duration of the run. With
// -parallel N, each experiment fans its sampled starting events across N
// concurrent analyses over shared store views; results are collected in
// sample order, so the tables are byte-identical to a serial run (-parallel 0
// uses all cores). With -timeline, every fanned-out analysis records into a
// per-sample profiler lane; the run's Chrome trace-event file (Perfetto:
// ui.perfetto.dev) is written to the given path, the SLO watchdog report
// goes to stderr, and — combined with -metrics — the live trace is also
// served at /debug/timeline. All profiler output is off stdout, so tables
// stay byte-identical with the flag on or off.
//
// Paper mapping:
//
//	severity        -> Section IV-B1 (how common dependency explosion is)
//	fig4            -> Figure 4      (graph size vs execution time limit)
//	table1          -> Table I       (five attack cases, No Opt vs Opt)
//	table2          -> Table II      (inter-update waiting time)
//	fig6            -> Figure 6      (CPU/memory during a long analysis)
//	explain         -> decision flight recorder: zero graph effect, full
//	                   explanation coverage, recording overhead
//	timeline        -> run timeline profiler + SLO watchdog: zero graph
//	                   effect, per-lane update cadence, stall detection,
//	                   trace-event schema validation
//	ablation-*      -> design-choice ablations from DESIGN.md
//	perf            -> real-CPU benchmarks of the query engine hot loops
//	                   (testing.Benchmark; BENCH_perf.json with -json)
//	serve           -> triage-daemon load test: an in-process serve.Server
//	                   driven over loopback HTTP by concurrent clients
//	                   (submit BDL, consume SSE), reporting submit-to-first-
//	                   update p50/p95, updates/sec, the 429 rejection rate
//	                   at saturation, and drain cleanliness
//	                   (BENCH_serve.json with -json)
//	memo            -> cross-alert backward-closure memoization: wall-clock
//	                   speedup of the batch triage fan-out with the shared
//	                   memo cache on vs off, with per-alert byte-identity
//	                   checked on every sample (BENCH_memo.json with -json;
//	                   -benchtime Nx sets repetitions per mode)
//	obs             -> alert-lifecycle journal: nil/gated/enabled emission
//	                   cost (ns/op), byte-identity of the full pipeline
//	                   journal on vs off, per-correlation-ID chain
//	                   completeness, and the five pipeline-latency SLIs
//	                   (BENCH_obs.json with -json)
//	shard           -> host×time store sharding: parallel-seal and batch-
//	                   backtrack wall plus critical-path time at 1/2/4/8
//	                   shards, with per-alert byte-identity enforced across
//	                   every shard count (BENCH_shard.json with -json)
//	qprof           -> scatter-gather query profiler: per-alert byte-identity
//	                   with the profiler on vs off at 1/2/4/8 shards, nil and
//	                   live observe cost (ns/op), and per-shard load skew
//	                   quantiles (BENCH_qprof.json with -json)
//
// -shards N runs every experiment against an N-shard store (the shard
// experiment ignores it and sweeps its own configs). Because sharding is
// real-CPU-only acceleration, every table is byte-identical to -shards 1 —
// CI diffs exactly that.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"aptrace"
	"aptrace/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment(s) to run, comma separated")
		hosts     = flag.Int("hosts", 12, "workstations in the dataset")
		days      = flag.Int("days", 10, "days of history")
		density   = flag.Float64("density", 1.5, "background activity scale")
		seed      = flag.Int64("seed", 1, "dataset seed")
		samples   = flag.Int("samples", 200, "random starting events (the paper uses 200)")
		cap_      = flag.Duration("cap", 2*time.Hour, "execution cap for unoptimized runs")
		k         = flag.Int("k", aptrace.DefaultWindows, "execution-window count")
		parallel  = flag.Int("parallel", 1, "concurrent analyses per experiment (0 = all cores)")
		shards    = flag.Int("shards", 1, "host×time store shards for the dataset (1 = flat; output is byte-identical either way)")
		jsonDir   = flag.String("json", "", "also write each experiment's result as BENCH_<exp>.json into this directory")
		metrics   = flag.String("metrics", "", "serve /metrics and /debug/telemetry on this address during the run")
		pprofA    = flag.String("pprof", "", "serve net/http/pprof on this address (shares the -metrics mux when the addresses match)")
		timelineF = flag.String("timeline", "", "profile every analysis into a run timeline; write the Chrome trace-event JSON to this path")
		gap       = flag.Duration("slo", aptrace.DefaultGapTarget, "SLO inter-update gap target for the -timeline watchdog")
		benchtime = flag.String("benchtime", "3x", "wall-clock repetitions per mode for the memo experiment, as Nx")
	)
	flag.Parse()
	iters, err := parseBenchtime(*benchtime)
	if err != nil {
		fatal(err)
	}
	if *parallel <= 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}

	var reg *aptrace.Telemetry
	var tl *aptrace.TimelineProfiler
	if *metrics != "" || *timelineF != "" {
		// The stall counter needs a registry even without -metrics.
		reg = aptrace.NewTelemetry()
	}
	if *timelineF != "" {
		tl = aptrace.NewTimeline(aptrace.TimelineOptions{GapTarget: *gap, Telemetry: reg})
	}
	if *metrics != "" {
		aptrace.RegisterRuntimeMetrics(reg)
		if *pprofA == *metrics {
			// Mount before ServeTelemetry builds the mux.
			reg.RegisterPprof()
		}
		if tl != nil {
			reg.RegisterDebug("/debug/timeline", tl.Handler())
		}
		_, addr, err := aptrace.ServeTelemetry(*metrics, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics and /debug/telemetry on %s\n", addr)
	}
	if *pprofA != "" && *pprofA != *metrics {
		_, addr, err := aptrace.ServePprof(*pprofA)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pprof: serving /debug/pprof on %s\n", addr)
	} else if *pprofA != "" {
		fmt.Fprintf(os.Stderr, "pprof: sharing the -metrics mux at /debug/pprof\n")
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("generating dataset: %d hosts, %d days, density %.1f, seed %d ...\n",
		*hosts, *days, *density, *seed)
	wall := time.Now()
	env, err := experiments.NewEnv(aptrace.WorkloadConfig{
		Seed: *seed, Hosts: *hosts, Days: *days, Density: *density, Shards: *shards,
	})
	if err != nil {
		fatal(err)
	}
	if reg != nil {
		env.Dataset.Store.SetTelemetry(reg)
	}
	fmt.Printf("dataset ready: %d events, %d objects, %d attacks (%.1fs wall)\n",
		env.Dataset.Store.NumEvents(), env.Dataset.Store.NumObjects(),
		len(env.Dataset.Attacks), time.Since(wall).Seconds())

	cfg := experiments.Config{Samples: *samples, Cap: *cap_, Windows: *k, Seed: 42, Parallel: *parallel, Telemetry: reg, Timeline: tl, BenchIters: iters}
	if *parallel > 1 {
		// Stderr, so stdout stays byte-comparable against a serial run.
		fmt.Fprintf(os.Stderr, "parallel analyses per experiment: %d\n", *parallel)
	}

	// Every runner returns its structured result so -json can persist the
	// machine-readable rows next to the printed tables.
	runners := map[string]func() (any, error){
		"severity": func() (any, error) { return experiments.RunSeverity(env, cfg, os.Stdout) },
		"fig4":     func() (any, error) { return experiments.RunFig4(env, cfg, os.Stdout) },
		"table1":   func() (any, error) { return experiments.RunTable1(env, cfg, os.Stdout) },
		"table2":   func() (any, error) { return experiments.RunTable2(env, cfg, os.Stdout) },
		"fig6":     func() (any, error) { return experiments.RunFig6(env, cfg, os.Stdout) },
		"refiner":  func() (any, error) { return experiments.RunRefiner(env, cfg, os.Stdout) },
		"explain":  func() (any, error) { return experiments.RunExplain(env, cfg, os.Stdout) },
		"timeline": func() (any, error) { return experiments.RunTimeline(env, cfg, os.Stdout) },
		"ablation-k": func() (any, error) {
			return experiments.RunAblationK(env, cfg, os.Stdout)
		},
		"ablation-policy": func() (any, error) {
			return experiments.RunAblationPolicy(env, cfg, os.Stdout)
		},
		"perf":  func() (any, error) { return experiments.RunPerf(env, cfg, os.Stdout) },
		"serve": func() (any, error) { return experiments.RunServe(env, cfg, os.Stdout) },
		"memo":  func() (any, error) { return experiments.RunMemo(env, cfg, os.Stdout) },
		"obs":   func() (any, error) { return experiments.RunObs(env, cfg, os.Stdout) },
		"shard": func() (any, error) { return experiments.RunShard(env, cfg, os.Stdout) },
		"qprof": func() (any, error) { return experiments.RunQprof(env, cfg, os.Stdout) },
	}
	order := []string{"severity", "fig4", "table1", "table2", "fig6", "refiner", "explain", "timeline", "ablation-k", "ablation-policy", "perf", "serve", "memo", "obs", "shard", "qprof"}

	selected := strings.Split(*exp, ",")
	if *exp == "all" {
		selected = order
	}
	for _, name := range selected {
		name = strings.TrimSpace(name)
		run, ok := runners[name]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (want one of %s)", name, strings.Join(order, ", ")))
		}
		wall := time.Now()
		res, err := run()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("[%s done in %.1fs wall]\n", name, time.Since(wall).Seconds())
		if *jsonDir != "" {
			path := filepath.Join(*jsonDir, "BENCH_"+name+".json")
			if err := writeJSON(path, res); err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
			fmt.Printf("[%s rows written to %s]\n", name, path)
		}
	}

	if tl != nil {
		f, err := os.Create(*timelineF)
		if err != nil {
			fatal(err)
		}
		if err := tl.WriteTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "\ntimeline: trace written to %s (load in ui.perfetto.dev)\n", *timelineF)
		tl.Report().Print(os.Stderr, nil)
	}
	if *metrics != "" {
		fmt.Fprintln(os.Stderr, "\ntelemetry snapshot:")
		enc := json.NewEncoder(os.Stderr)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	}
}

// parseBenchtime accepts the go-test style iteration form "Nx".
func parseBenchtime(s string) (int, error) {
	var n int
	if _, err := fmt.Sscanf(s, "%dx", &n); err != nil || n < 1 {
		return 0, fmt.Errorf("-benchtime wants the form Nx with N >= 1, got %q", s)
	}
	return n, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apbench:", err)
	os.Exit(1)
}
