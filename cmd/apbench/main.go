// Command apbench regenerates the paper's evaluation (Section IV): every
// table and figure, over a freshly generated synthetic enterprise dataset
// bound to the simulated query-latency clock.
//
// Usage:
//
//	apbench [-exp all|severity|fig4|table1|table2|fig6|ablation-k|ablation-policy]
//	        [-hosts 12] [-days 10] [-density 1.5] [-samples 200] [-cap 2h] [-k 8]
//
// Paper mapping:
//
//	severity        -> Section IV-B1 (how common dependency explosion is)
//	fig4            -> Figure 4      (graph size vs execution time limit)
//	table1          -> Table I       (five attack cases, No Opt vs Opt)
//	table2          -> Table II      (inter-update waiting time)
//	fig6            -> Figure 6      (CPU/memory during a long analysis)
//	ablation-*      -> design-choice ablations from DESIGN.md
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"aptrace"
	"aptrace/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment(s) to run, comma separated")
		hosts   = flag.Int("hosts", 12, "workstations in the dataset")
		days    = flag.Int("days", 10, "days of history")
		density = flag.Float64("density", 1.5, "background activity scale")
		seed    = flag.Int64("seed", 1, "dataset seed")
		samples = flag.Int("samples", 200, "random starting events (the paper uses 200)")
		cap_    = flag.Duration("cap", 2*time.Hour, "execution cap for unoptimized runs")
		k       = flag.Int("k", aptrace.DefaultWindows, "execution-window count")
	)
	flag.Parse()

	fmt.Printf("generating dataset: %d hosts, %d days, density %.1f, seed %d ...\n",
		*hosts, *days, *density, *seed)
	wall := time.Now()
	env, err := experiments.NewEnv(aptrace.WorkloadConfig{
		Seed: *seed, Hosts: *hosts, Days: *days, Density: *density,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset ready: %d events, %d objects, %d attacks (%.1fs wall)\n",
		env.Dataset.Store.NumEvents(), env.Dataset.Store.NumObjects(),
		len(env.Dataset.Attacks), time.Since(wall).Seconds())

	cfg := experiments.Config{Samples: *samples, Cap: *cap_, Windows: *k, Seed: 42}

	runners := map[string]func() error{
		"severity": func() error {
			_, err := experiments.RunSeverity(env, cfg, os.Stdout)
			return err
		},
		"fig4": func() error {
			_, err := experiments.RunFig4(env, cfg, os.Stdout)
			return err
		},
		"table1": func() error {
			_, err := experiments.RunTable1(env, cfg, os.Stdout)
			return err
		},
		"table2": func() error {
			_, err := experiments.RunTable2(env, cfg, os.Stdout)
			return err
		},
		"fig6": func() error {
			_, err := experiments.RunFig6(env, cfg, os.Stdout)
			return err
		},
		"refiner": func() error {
			_, err := experiments.RunRefiner(env, cfg, os.Stdout)
			return err
		},
		"ablation-k": func() error {
			_, err := experiments.RunAblationK(env, cfg, os.Stdout)
			return err
		},
		"ablation-policy": func() error {
			_, err := experiments.RunAblationPolicy(env, cfg, os.Stdout)
			return err
		},
	}
	order := []string{"severity", "fig4", "table1", "table2", "fig6", "refiner", "ablation-k", "ablation-policy"}

	selected := strings.Split(*exp, ",")
	if *exp == "all" {
		selected = order
	}
	for _, name := range selected {
		name = strings.TrimSpace(name)
		run, ok := runners[name]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (want one of %s)", name, strings.Join(order, ", ")))
		}
		wall := time.Now()
		if err := run(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("[%s done in %.1fs wall]\n", name, time.Since(wall).Seconds())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apbench:", err)
	os.Exit(1)
}
