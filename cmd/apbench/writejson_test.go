package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readJSON(t *testing.T, path string) map[string]any {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("%s is not valid JSON: %v", path, err)
	}
	return m
}

// tempLitter counts leftover *.tmp files — an atomic writer must never
// leave any behind, success or failure.
func tempLitter(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			n++
		}
	}
	return n
}

// TestWriteJSONOverwritesOnlyItsOwnFile: re-running one experiment must
// replace only that experiment's BENCH file; siblings stay byte-identical.
func TestWriteJSONOverwritesOnlyItsOwnFile(t *testing.T) {
	dir := t.TempDir()
	memoPath := filepath.Join(dir, "BENCH_memo.json")
	perfPath := filepath.Join(dir, "BENCH_perf.json")

	if err := writeJSON(perfPath, map[string]int{"perf": 1}); err != nil {
		t.Fatal(err)
	}
	perfBytes, err := os.ReadFile(perfPath)
	if err != nil {
		t.Fatal(err)
	}

	if err := writeJSON(memoPath, map[string]int{"run": 1}); err != nil {
		t.Fatal(err)
	}
	if err := writeJSON(memoPath, map[string]int{"run": 2}); err != nil {
		t.Fatal(err)
	}
	if got := readJSON(t, memoPath)["run"]; got != float64(2) {
		t.Fatalf("re-run should overwrite its own file, got run=%v", got)
	}
	after, err := os.ReadFile(perfPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(perfBytes) {
		t.Fatal("writing BENCH_memo.json clobbered BENCH_perf.json")
	}
	if n := tempLitter(t, dir); n != 0 {
		t.Fatalf("successful writes left %d temp files behind", n)
	}
}

// TestWriteJSONErrorLeavesTargetIntact: a failed write must leave the
// previous destination untouched and clean up its temp file — a partial
// result may never replace a complete one.
func TestWriteJSONErrorLeavesTargetIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_memo.json")
	if err := writeJSON(path, map[string]int{"good": 1}); err != nil {
		t.Fatal(err)
	}

	// Marshal failure: channels are not serializable.
	if err := writeJSON(path, map[string]any{"bad": make(chan int)}); err == nil {
		t.Fatal("marshaling a channel should fail")
	}
	if got := readJSON(t, path)["good"]; got != float64(1) {
		t.Fatalf("failed write corrupted the destination: %v", got)
	}
	if n := tempLitter(t, dir); n != 0 {
		t.Fatalf("failed write left %d temp files behind", n)
	}
}

// TestWriteJSONMissingDir: temp-file creation failure surfaces as an error
// without creating anything.
func TestWriteJSONMissingDir(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no-such-subdir", "BENCH_memo.json")
	if err := writeJSON(path, map[string]int{"x": 1}); err == nil {
		t.Fatal("writing into a missing directory should fail")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("nothing should exist at %s: %v", path, err)
	}
}
