package aptrace_test

import (
	"fmt"
	"log"

	"aptrace"
)

// ExampleParseScript shows BDL parsing and canonical formatting.
func ExampleParseScript() {
	script, err := aptrace.ParseScript(`
from "04/02/2019" to "05/01/2019"
in "desktop1"
backward file f[path = "C://Sensitive/important.doc" and type = "write"]
  -> proc p[exename = "malware1" or exename = "malware2"]
  -> *
where time <= 10mins and hop <= 25 and proc.exename != "explorer"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(aptrace.FormatScript(script))
	// Output:
	// from "04/02/2019" to "05/01/2019"
	// in "desktop1"
	// backward file f[path = "C://Sensitive/important.doc" and type = "write"]
	//   -> proc p[exename = "malware1" or exename = "malware2"]
	//   -> *
	// where time <= 10mins and hop <= 25 and proc.exename != "explorer"
}

// ExampleCompileScript shows the compiled plan's extracted metadata.
func ExampleCompileScript() {
	plan, err := aptrace.CompileScript(`
backward ip a[dst_ip = "203.0.113.66"] -> proc j[exename = "java.exe"] -> *
where time <= 10mins and hop <= 25 and file.path != "*.dll"
prioritize [type = file and src.path = "sensitive"] <- [type = network and amount >= size]`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("time budget:", plan.TimeBudget)
	fmt.Println("hop budget:", plan.HopBudget)
	fmt.Println("heuristics:", plan.NumHeuristics())
	fmt.Println("prioritize rules:", len(plan.Prioritize))
	fmt.Println("forward:", plan.Forward)
	// Output:
	// time budget: 10m0s
	// hop budget: 25
	// heuristics: 3
	// prioritize rules: 1
	// forward: false
}

// Example_investigation walks the core loop: generate, detect, backtrack.
func Example_investigation() {
	ds, err := aptrace.Generate(aptrace.WorkloadConfig{
		Seed: 1, Hosts: 3, Days: 2, Density: 0.3,
		Attacks: []string{"phishing"},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	atk := ds.Attacks[0]
	alert, _ := ds.Store.EventByID(atk.AlertID)

	sess := aptrace.NewSession(ds.Store, aptrace.ExecOptions{})
	if err := sess.Start(atk.Scripts[len(atk.Scripts)-1], &alert); err != nil {
		log.Fatal(err)
	}
	res, err := sess.Wait()
	if err != nil {
		log.Fatal(err)
	}

	// The root cause (the phishing mail's socket) is in the graph.
	var found bool
	for _, n := range res.Graph.Nodes() {
		if ds.Store.Object(n.ID).Key() == atk.RootCause {
			found = true
		}
	}
	fmt.Println("attack:", atk.Title)
	fmt.Println("root cause found:", found)
	// Output:
	// attack: Phishing Email (motivating example)
	// root cause found: true
}
