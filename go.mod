module aptrace

go 1.22
