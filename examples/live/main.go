// Live collection pipeline: the deployment shape of the paper's system.
// Agents stream ETW/auditd records in; the live store makes them durable
// through a write-ahead log; the detector — including the learned
// rare-parentage rule — watches snapshots; an alert triggers a backtracking
// investigation over a consistent snapshot while collection continues.
//
// With -metrics, the whole pipeline publishes telemetry — WAL appends and
// fsyncs, per-query store metrics, executor window scheduling — served at
// /metrics (Prometheus text) and /debug/telemetry (JSON) and dumped as a
// JSON snapshot when the run finishes.
//
//	go run ./examples/live [-metrics :9090]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"aptrace"
)

func main() {
	log.SetFlags(0)
	metrics := flag.String("metrics", "", "serve /metrics and /debug/telemetry on this address, e.g. :9090")
	flag.Parse()

	var reg *aptrace.Telemetry
	var storeOpts []aptrace.StoreOption
	if *metrics != "" {
		reg = aptrace.NewTelemetry()
		_, addr, err := aptrace.ServeTelemetry(*metrics, reg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry: serving /metrics and /debug/telemetry on %s\n", addr)
		storeOpts = append(storeOpts, aptrace.WithTelemetry(reg))
	}

	// Synthesize "the wire": raw audit records from a generated dataset,
	// encoded in the auditd line format collectors would emit.
	ds, err := aptrace.Generate(aptrace.WorkloadConfig{
		Seed: 2, Hosts: 4, Days: 3, Density: 0.5,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	var wire bytes.Buffer
	n, err := aptrace.ExportAudit(ds.Store, &wire, aptrace.FormatAuditd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collector wire: %d raw auditd records\n", n)

	// Stream into a live store (WAL-durable).
	dir, err := os.MkdirTemp("", "aptrace-live-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	live, err := aptrace.OpenLiveStore(dir, nil, storeOpts...)
	if err != nil {
		log.Fatal(err)
	}
	defer live.Close()
	stats, err := aptrace.IngestAuditLive(live, &wire)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d records (%d rejected); WAL at %s\n",
		stats.Ingested, stats.Rejected, filepath.Join(dir, "wal.log"))

	// Checkpoint: fold the tail into immutable segments.
	if err := live.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed: %d events in sealed segments, %d pending\n",
		live.BaseEvents(), live.PendingEvents())

	// Analysis runs against a consistent snapshot.
	snap, err := live.Snapshot()
	if err != nil {
		log.Fatal(err)
	}

	// Train the learned rule on the (assumed benign) first half, then scan
	// the second half with the full rule set.
	min, max, _ := snap.TimeRange()
	mid := min + (max-min)/2
	rare, err := aptrace.TrainRareChildRule(snap, min, mid, 0)
	if err != nil {
		log.Fatal(err)
	}
	det := aptrace.NewDetector(append(aptrace.DefaultRules(), rare)...)
	alerts, err := det.Scan(snap, mid, max+1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndetector: %d alerts in the live window; first five:\n", len(alerts))
	for i, a := range alerts {
		if i == 5 {
			break
		}
		fmt.Printf("  [%s/%s] %s\n", a.Rule, a.Severity, a.Message)
	}

	// Investigate the highest-value alert with a quick bounded backtrack,
	// then ask for heuristic suggestions for the next round.
	var pick aptrace.Alert
	for _, a := range alerts {
		if a.Rule == "large-upload" {
			pick = a
			break
		}
	}
	if pick.Event.ID == 0 {
		pick = alerts[0]
	}
	fmt.Printf("\ninvestigating: %s\n", pick.Message)
	script := fmt.Sprintf(`
backward ip a[event_time = %q] -> *
where hop <= 10`, pick.Event.When().Format("01/02/2006:15:04:05"))
	sess := aptrace.NewSession(snap, aptrace.ExecOptions{Telemetry: reg})
	if err := sess.Start(script, &pick.Event); err != nil {
		// The alert may not be a socket event; fall back to a proc start.
		script = fmt.Sprintf(`backward proc p[event_time = %q] -> * where hop <= 10`,
			pick.Event.When().Format("01/02/2006:15:04:05"))
		if err := sess.Start(script, &pick.Event); err != nil {
			log.Fatal(err)
		}
	}
	res, err := sess.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dependency graph: %d events, %d nodes\n", res.Graph.NumEdges(), res.Graph.NumNodes())

	sugs := aptrace.SuggestHeuristics(res.Graph, snap, 4)
	if len(sugs) > 0 {
		fmt.Println("\nsuggested heuristics for the next script version:")
		for _, s := range sugs {
			fmt.Printf("  %-38s -- %s\n", s.Clause, s.Reason)
		}
	}

	if reg != nil {
		fmt.Println("\ntelemetry snapshot:")
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reg.Snapshot()); err != nil {
			log.Fatal(err)
		}
	}
}
