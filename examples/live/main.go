// Live triage pipeline on the serve components: the deployment shape of
// the paper's system, driven in-process. Agents stream ETW/auditd records
// into the triage server's WAL-durable live store; the detector — including
// the learned rare-parentage rule — runs incrementally over the live tail;
// every alert auto-launches a bounded backtracking investigation on the
// analysis fleet; and the explored graphs feed heuristic suggestions for
// the analyst's next script version. cmd/apserve wraps the same components
// behind the JSON/SSE API; this example calls them directly.
//
// With -metrics, the whole pipeline publishes telemetry — WAL appends and
// fsyncs, ingest decode errors, session admissions, SSE drop accounting —
// served at /metrics (Prometheus text) and /debug/telemetry (JSON) and
// dumped as a JSON snapshot when the run finishes.
//
//	go run ./examples/live [-metrics :9090]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"aptrace"
)

func main() {
	log.SetFlags(0)
	metrics := flag.String("metrics", "", "serve /metrics and /debug/telemetry on this address, e.g. :9090")
	flag.Parse()

	var reg *aptrace.Telemetry
	var storeOpts []aptrace.StoreOption
	if *metrics != "" {
		reg = aptrace.NewTelemetry()
		_, addr, err := aptrace.ServeTelemetry(*metrics, reg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry: serving /metrics and /debug/telemetry on %s\n", addr)
		storeOpts = append(storeOpts, aptrace.WithTelemetry(reg))
	}

	// Synthesize "the wire": raw audit records from a generated dataset,
	// encoded in the auditd line format collectors would emit.
	ds, err := aptrace.Generate(aptrace.WorkloadConfig{
		Seed: 2, Hosts: 4, Days: 3, Density: 0.5,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	var wire bytes.Buffer
	n, err := aptrace.ExportAudit(ds.Store, &wire, aptrace.FormatAuditd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collector wire: %d raw auditd records\n", n)

	// The triage server owns the rest of the pipeline: a WAL-durable live
	// store for ingest, incremental detection, and an auto-backtrack fleet
	// with per-tenant admission control. Auto-runs are hop- and
	// time-bounded so an unattended alert cannot explode.
	dir, err := os.MkdirTemp("", "aptrace-live-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	live, err := aptrace.OpenLiveStore(dir, nil, storeOpts...)
	if err != nil {
		log.Fatal(err)
	}
	defer live.Close()
	srv, err := aptrace.NewTriageServer(aptrace.TriageConfig{
		Live:          live,
		AutoBacktrack: true,
		AutoHops:      10,
		AutoBudget:    time.Minute,
		Quota:         aptrace.TriageQuota{MaxActive: 4, MaxQueued: 64},
		Telemetry:     reg,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Stream the wire through the server's ingest path (the engine behind
	// POST /api/v1/ingest), then checkpoint the tail into sealed segments.
	stats, err := srv.IngestReader(&wire)
	if err != nil {
		log.Fatal(err)
	}
	if err := live.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d records (%d rejected); %d events sealed, %d pending\n",
		stats.Ingested, stats.Rejected, live.BaseEvents(), live.PendingEvents())

	// Train the learned rule on the (assumed benign) first half and swap
	// the server's rule set — the retraining hook deployments use once
	// enough history accumulates.
	snap, err := srv.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	min, max, _ := snap.TimeRange()
	mid := min + (max-min)/2
	rare, err := aptrace.TrainRareChildRule(snap, min, mid, 0)
	if err != nil {
		log.Fatal(err)
	}
	srv.SetDetector(aptrace.NewDetector(append(aptrace.DefaultRules(), rare)...))

	// One incremental detection pass (the background loop, run by hand):
	// every alert auto-launches a bounded backtracking session.
	count, err := srv.DetectNow()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndetector: %d alerts in the live window; first five:\n", count)
	for i, a := range srv.Alerts() {
		if i == 5 {
			break
		}
		fmt.Printf("  [%s/%s] %s\n", a.Rule, a.Severity, a.Message)
	}

	// The fleet is already investigating. Not every alert gets a session:
	// auto-runs are charged to the detector's own tenant, so a noisy rule
	// saturates its own quota instead of starving analysts.
	launched := 0
	for _, a := range srv.Alerts() {
		if a.SessionID != "" {
			launched++
		}
	}
	fmt.Printf("\nfleet: %d of %d alerts admitted within the detector quota\n",
		launched, count)

	// Wait for every auto-run and keep the one that explored the most
	// causality.
	var best *aptrace.TriageRun
	var bestSum aptrace.TriageSummary
	runs := srv.Manager().Runs()
	for _, run := range runs {
		sum := run.Wait()
		if sum.State != "done" {
			fmt.Printf("  run %s (%s): %s — %s\n", sum.ID, sum.Rule, sum.State, sum.Error)
			continue
		}
		if best == nil || sum.Edges > bestSum.Edges {
			best, bestSum = run, sum
		}
	}
	fmt.Printf("fleet: %d auto-launched investigations finished\n", len(runs))
	if best == nil {
		log.Fatal("no investigation finished cleanly")
	}
	fmt.Printf("largest graph: run %s [%s] — %d events, %d nodes, %d streamed updates\n",
		bestSum.ID, bestSum.Rule, bestSum.Edges, bestSum.Nodes, bestSum.Updates)

	// Heuristic suggestions from the explored graph: the agile-refinement
	// loop's input for the analyst's next script version.
	sugs := aptrace.SuggestHeuristics(best.Graph(), best.View(), 4)
	if len(sugs) > 0 {
		fmt.Println("\nsuggested heuristics for the next script version:")
		for _, s := range sugs {
			fmt.Printf("  %-38s -- %s\n", s.Clause, s.Reason)
		}
	}

	// Graceful drain, exactly as apserve does on SIGTERM: stop the
	// detection loop, stop analyses, flush the WAL, report.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rep := srv.Drain(ctx)
	fmt.Printf("\ndrained: %d active stopped, %d queued aborted, clean=%v in %s\n",
		rep.Stopped, rep.Aborted, rep.Clean, rep.Took.Round(time.Millisecond))

	if reg != nil {
		fmt.Println("\ntelemetry snapshot:")
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reg.Snapshot()); err != nil {
			log.Fatal(err)
		}
	}
}
