// Impact analysis: forward tracking, the complement of the paper's backward
// tracking (and the direction systems like Taser add on top of King-Chen
// provenance). Starting from the moment the malicious Excel macro dropped
// java.exe onto disk, follow the data FORWARD to see everything the dropped
// file went on to touch — across processes, files, and hosts.
//
//	go run ./examples/impact
package main

import (
	"fmt"
	"log"
	"sort"

	"aptrace"
)

func main() {
	log.SetFlags(0)

	ds, err := aptrace.Generate(aptrace.WorkloadConfig{
		Seed: 3, Hosts: 6, Days: 5, Density: 0.8,
	}, aptrace.NewSimulatedClock())
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth: the excel-macro attack. Its chain includes the event
	// "excel.exe writes C:\Users\u\Documents\java.exe" — the drop. An
	// analyst who has backtracked to the drop now asks the dual question:
	// what did this file infect?
	var atk aptrace.Attack
	for _, a := range ds.Attacks {
		if a.Name == "excel-macro" {
			atk = a
		}
	}
	var drop aptrace.Event
	for _, id := range atk.ChainIDs {
		e, _ := ds.Store.EventByID(id)
		obj := ds.Store.Object(e.Dst())
		if obj.Path == `C:\Users\u\Documents\java.exe` {
			drop = e
			break
		}
	}
	if drop.ID == 0 {
		log.Fatal("drop event not found in ground truth")
	}
	fmt.Printf("starting point: %s wrote %s at %s\n",
		ds.Store.Object(drop.Subject).Exe,
		ds.Store.Object(drop.Object).Path,
		drop.When().Format("2006-01-02 15:04:05"))

	// The forward script: same BDL, opposite direction.
	script := fmt.Sprintf(`
forward file f[path = "java.exe" and event_time = %q and action_type = "write"] -> *
where hop <= 8
`, drop.When().Format("01/02/2006:15:04:05"))
	plan, err := aptrace.CompileScript(script)
	if err != nil {
		log.Fatal(err)
	}

	x, err := aptrace.NewExecutor(ds.Store, plan, aptrace.ExecOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := x.Run(drop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("impact graph: %d events, %d objects, depth %d\n\n",
		res.Graph.NumEdges(), res.Graph.NumNodes(), res.Graph.MaxHop())

	// Summarize the blast radius by host and object type.
	hosts := map[string]int{}
	types := map[string]int{}
	for _, n := range res.Graph.Nodes() {
		o := ds.Store.Object(n.ID)
		h := o.Host
		if h == "" {
			h = "(network)"
		}
		hosts[h]++
		types[o.Type.String()]++
	}
	fmt.Println("blast radius by host:")
	var names []string
	for h := range hosts {
		names = append(names, h)
	}
	sort.Strings(names)
	for _, h := range names {
		fmt.Printf("  %-12s %d objects\n", h, hosts[h])
	}
	fmt.Printf("object types: %d processes, %d files, %d sockets\n",
		types["proc"], types["file"], types["ip"])

	// Walk the deepest impact path for the narrative.
	fmt.Println("\ndeepest impact chain:")
	var deepest aptrace.ObjID
	depth := -1
	for _, n := range res.Graph.Nodes() {
		if n.Hop > depth {
			depth, deepest = n.Hop, n.ID
		}
	}
	// Reconstruct one path backward from the deepest node via in-edges.
	cur := deepest
	var lines []string
	for cur != drop.Dst() {
		in := res.Graph.InEdges(cur)
		if len(in) == 0 {
			break
		}
		e := in[0]
		lines = append(lines, fmt.Sprintf("  %s --%s--> %s",
			ds.Store.Object(e.Src()).Label(), e.Action, ds.Store.Object(e.Dst()).Label()))
		cur = e.Src()
	}
	for i := len(lines) - 1; i >= 0; i-- {
		fmt.Println(lines[i])
	}
}
