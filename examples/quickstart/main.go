// Quickstart: generate a small synthetic enterprise history, let the anomaly
// detector pick a starting point, run one backtracking analysis with a BDL
// heuristic, and print the resulting dependency graph.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"aptrace"
)

func main() {
	log.SetFlags(0)

	// A small dataset: 4 workstations plus the infrastructure servers,
	// three days of history, all five attack scenarios injected.
	ds, err := aptrace.Generate(aptrace.WorkloadConfig{
		Seed: 1, Hosts: 4, Days: 3, Density: 0.5,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d events, %d objects\n", ds.Store.NumEvents(), ds.Store.NumObjects())

	// The detector supplies the investigation's starting point.
	det := aptrace.NewDetector()
	alerts, err := det.Scan(ds.Store, 0, 1<<62)
	if err != nil {
		log.Fatal(err)
	}
	if len(alerts) == 0 {
		log.Fatal("no alerts found")
	}
	alert := alerts[0]
	fmt.Printf("investigating alert: %s (%s)\n", alert.Message, alert.Rule)

	// A first script: backtrack from the alert, exclude library noise,
	// keep the search shallow.
	script := fmt.Sprintf(`
backward ip a[dst_ip = "203.0.113.66" and event_time = %q] -> *
where file.path != "*.dll" and hop <= 12
`, alert.Event.When().Format("01/02/2006:15:04:05"))

	sess := aptrace.NewSession(ds.Store, aptrace.ExecOptions{})
	if err := sess.Start(script, &alert.Event); err != nil {
		log.Fatal(err)
	}
	res, err := sess.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analysis %s: dependency graph has %d events across %d objects\n",
		res.Reason, res.Graph.NumEdges(), res.Graph.NumNodes())

	// Render the graph; pipe to `dot -Tsvg` to visualize.
	if err := aptrace.WriteDOT(os.Stdout, res.Graph, ds.Store.Object); err != nil {
		log.Fatal(err)
	}
}
