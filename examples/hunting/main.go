// Quantity-based exfiltration hunting: demonstrates the advanced BDL
// heuristics of Section IV-C — the "prioritize [up] <- [down]" rule with the
// amount >= size conservation check (Program 2), and the computed attributes
// isReadonly / isWriteThrough (Program 3).
//
// The hunt: across all hosts, find processes that read a sensitive file and
// then pushed at least that many bytes to an external address, separating
// true exfiltration from benign telemetry (the paper's Adobe-Reader example).
//
//	go run ./examples/hunting
package main

import (
	"fmt"
	"log"

	"aptrace"
)

func main() {
	log.SetFlags(0)

	ds, err := aptrace.Generate(aptrace.WorkloadConfig{
		Seed: 5, Hosts: 6, Days: 5, Density: 1.0,
	}, aptrace.NewSimulatedClock())
	if err != nil {
		log.Fatal(err)
	}

	// The wget-gcc attack ends with a.out reading /home/dev/.ssh/id_rsa
	// and uploading 50 MB. Hunt it with the Program 2 pattern.
	var atk aptrace.Attack
	for _, a := range ds.Attacks {
		if a.Name == "wget-gcc" {
			atk = a
		}
	}
	alert, _ := ds.Store.EventByID(atk.AlertID)

	script := fmt.Sprintf(`
backward ip a[dst_ip = "203.0.113.66" and subject_name = "a.out" and event_time = %q] -> *
where file.path != "/usr/include/*" and file.path != "*.bash_history" and hop <= 20
prioritize [type = file and src.path = ".ssh"] <- [type = network and dst.ip = "203.*" and amount >= size]
`, alert.When().Format("01/02/2006:15:04:05"))

	plan, err := aptrace.CompileScript(script)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled hunt: %d heuristics, %d prioritize rule(s)\n",
		plan.NumHeuristics(), len(plan.Prioritize))

	// Run the prioritized backtracking; the rule pulls the sensitive-read
	// path to the front of the queue.
	sensitiveAt := -1 // update index at which the key file surfaced
	updates := 0
	x, err := aptrace.NewExecutor(ds.Store, plan, aptrace.ExecOptions{
		OnUpdate: func(u aptrace.Update) {
			updates++
			if sensitiveAt < 0 && ds.Store.Object(u.Event.Src()).Path == "/home/dev/.ssh/id_rsa" {
				sensitiveAt = updates
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := x.Run(alert)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analysis %s: %d events in the graph\n", res.Reason, res.Graph.NumEdges())
	if sensitiveAt >= 0 {
		fmt.Printf("the sensitive read surfaced as update #%d of %d — prioritized early\n", sensitiveAt, updates)
	}

	// Walk the final graph for sensitive-file reads feeding the upload and
	// verify flow conservation, as the rule demanded.
	fmt.Println("\nsensitive flows on the exfiltration path:")
	for _, e := range res.Graph.Edges() {
		src := ds.Store.Object(e.Src())
		if src.Path == "/home/dev/.ssh/id_rsa" {
			dst := ds.Store.Object(e.Dst())
			fmt.Printf("  %s read %d bytes from %s (uploaded %d to %s)\n",
				dst.Exe, e.Amount, src.Path, alert.Amount, "203.0.113.66")
			if alert.Amount >= e.Amount {
				fmt.Println("  conservation check: upload >= read — true exfiltration")
			}
		}
	}

	// Program 3 flavor: computed attributes. Count how many file nodes on
	// the final graph were read-only in the analysis window (candidates
	// for exclusion in the next refinement round).
	min, max, _ := ds.Store.TimeRange()
	readonly, total := 0, 0
	for _, n := range res.Graph.Nodes() {
		o := ds.Store.Object(n.ID)
		if o.Path == "" {
			continue
		}
		total++
		ro, err := ds.Store.IsReadOnlyFile(n.ID, min, max+1)
		if err == nil && ro {
			readonly++
		}
	}
	fmt.Printf("\n%d of %d file nodes in the graph are read-only in the window\n", readonly, total)
	fmt.Println(`(a next-round heuristic could add: where proc.dst.isReadonly = false)`)
}
