// Phishing investigation: replays the paper's motivating attack case A1
// end-to-end, exactly as Section IV-D narrates it — three BDL script
// versions, each derived from what the previous iteration revealed, applied
// through the session's pause/edit/resume loop:
//
//	v1: plain backtracking from the java.exe beacon alert (Program 4)
//	v2: + where file.path != "*.dll"            (Program 5)
//	v3: + and proc.exename != "findstr.exe"     (Program 6)
//
// The run stops as soon as the phishing mail socket (the ground-truth root
// cause) enters the dependency graph.
//
//	go run ./examples/phishing
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"aptrace"
)

func main() {
	log.SetFlags(0)

	clk := aptrace.NewSimulatedClock()
	ds, err := aptrace.Generate(aptrace.WorkloadConfig{
		Seed: 1, Hosts: 6, Days: 5, Density: 1.0,
	}, clk)
	if err != nil {
		log.Fatal(err)
	}

	var atk aptrace.Attack
	for _, a := range ds.Attacks {
		if a.Name == "phishing" {
			atk = a
		}
	}
	alert, _ := ds.Store.EventByID(atk.AlertID)
	fmt.Printf("alert: %s beacons to an external IP at %s\n",
		ds.Store.Object(alert.Subject).Exe, alert.When().Format(time.RFC3339))

	// Locate the ground-truth root cause so we know when to stop —
	// standing in for the analyst recognizing outlook.exe and the mail
	// relay socket.
	var rootID aptrace.ObjID
	for id, o := range ds.Store.Objects() {
		if o.Key() == atk.RootCause {
			rootID = aptrace.ObjID(id)
		}
	}

	// First run with no heuristics, capped: this is what the analyst sees
	// before tuning — a graph exploding into thousands of events.
	noOpt, err := aptrace.RunBaseline(ds.Store, alert, aptrace.BaselineOptions{TimeBudget: 30 * time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without heuristics (30 simulated minutes): %d events — unusable\n\n",
		noOpt.Graph.NumEdges())

	started := clk.Now()
	var sess *aptrace.Session
	versionDone := make(chan struct{}, 1)
	// found is closed (sticky) the moment the root cause lands, so every
	// later receive also proceeds.
	found := make(chan struct{})
	var foundOnce sync.Once
	count := 0
	// Versions still to apply: once the final script is active, the
	// analyst stops pausing and lets it run to the root cause.
	pending := int32(len(atk.Scripts) - 1)
	sess = aptrace.NewSession(ds.Store, aptrace.ExecOptions{OnUpdate: func(u aptrace.Update) {
		count++
		if u.Event.Src() == rootID || u.Event.Dst() == rootID {
			foundOnce.Do(func() { close(found) })
			return
		}
		// After inspecting a handful of events the analyst pauses to
		// refine the script, as in the paper's narrative.
		if count%8 == 0 && atomic.LoadInt32(&pending) > 0 {
			select {
			case versionDone <- struct{}{}:
				sess.Pause()
			default:
			}
		}
	}})

	fmt.Println("v1: basic backtracking from the alert")
	if err := sess.Start(atk.Scripts[0], &alert); err != nil {
		log.Fatal(err)
	}

	for vi := 1; vi < len(atk.Scripts); vi++ {
		select {
		case <-versionDone:
		case <-found:
			fmt.Println("root cause surfaced before further tuning was needed")
		}
		heuristic := "exclude *.dll files"
		if vi == 2 {
			heuristic = "also exclude findstr.exe"
		}
		fmt.Printf("v%d: analyst pauses, adds heuristic: %s\n", vi+1, heuristic)
		action, err := sess.UpdateScript(atk.Scripts[vi])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    refiner decision: %s (graph and queue reused)\n", action)
		atomic.AddInt32(&pending, -1)
		sess.Resume()
	}

	<-found
	sess.Stop()
	res, err := sess.Wait()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nroot cause found: the phishing mail socket %v\n", atk.RootCause)
	fmt.Printf("final graph: %d events (vs %d unoptimized)\n",
		res.Graph.NumEdges(), noOpt.Graph.NumEdges())
	fmt.Printf("events inspected: %d, simulated analysis time: %s\n",
		count, clk.Now().Sub(started).Round(time.Second))
	fmt.Println("\nattack chain (ground truth):")
	for _, id := range atk.ChainIDs {
		e, _ := ds.Store.EventByID(id)
		fmt.Printf("  %s  %s --%s--> %s\n",
			e.When().Format("15:04:05"),
			ds.Store.Object(e.Src()).Label(), e.Action, ds.Store.Object(e.Dst()).Label())
	}
}
