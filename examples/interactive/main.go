// Interactive responsiveness demo: runs the same investigation twice — once
// with the classic execute-to-complete baseline and once with APTrace's
// execution-window executor — and prints the waiting-time-between-updates
// distribution of each, the quantity Table II of the paper reports. Then it
// shows the live update stream an analyst would watch.
//
//	go run ./examples/interactive
package main

import (
	"fmt"
	"log"
	"time"

	"aptrace"
	"aptrace/internal/stats"
)

func main() {
	log.SetFlags(0)

	clk := aptrace.NewSimulatedClock()
	ds, err := aptrace.Generate(aptrace.WorkloadConfig{
		Seed: 7, Hosts: 8, Days: 6, Density: 1.0,
	}, clk)
	if err != nil {
		log.Fatal(err)
	}

	// Investigate the ShellShock exfiltration (attack case A3): its
	// backward path runs through the Apache server's entire request
	// history — a classic heavy hitter.
	var atk aptrace.Attack
	for _, a := range ds.Attacks {
		if a.Name == "shellshock" {
			atk = a
		}
	}
	alert, _ := ds.Store.EventByID(atk.AlertID)
	fmt.Printf("alert: httpd uploads %d MB to %s\n\n", alert.Amount>>20, "203.0.113.66")

	cap_ := 20 * time.Minute

	// Baseline: one monolithic query per node.
	var baseTimes []time.Time
	if _, err := aptrace.RunBaseline(ds.Store, alert, aptrace.BaselineOptions{
		TimeBudget: cap_,
		OnUpdate:   func(u aptrace.Update) { baseTimes = append(baseTimes, u.At) },
	}); err != nil {
		log.Fatal(err)
	}

	// APTrace: execution-window partitioning.
	var apTimes []time.Time
	plan, err := aptrace.CompileScript(atk.Scripts[0])
	if err != nil {
		log.Fatal(err)
	}
	plan.TimeBudget = cap_
	x, err := aptrace.NewExecutor(ds.Store, plan, aptrace.ExecOptions{
		OnUpdate: func(u aptrace.Update) { apTimes = append(apTimes, u.At) },
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := x.Run(alert); err != nil {
		log.Fatal(err)
	}

	report := func(name string, times []time.Time) {
		times = stats.DistinctTimes(times) // a batch is one graph update
		ds := stats.Durations(stats.Deltas(times))
		if len(ds) == 0 {
			fmt.Printf("%-10s no updates\n", name)
			return
		}
		sum := stats.Summarize(ds)
		ps := stats.Percentiles(ds, 0.90, 0.95, 0.99)
		fmt.Printf("%-10s %5d updates | gap avg %6.2fs  p90 %6.2fs  p95 %6.2fs  p99 %6.2fs  max %6.2fs\n",
			name, len(times), sum.Mean, ps[0], ps[1], ps[2], sum.Max)
	}
	fmt.Println("waiting time between dependency-graph updates (simulated seconds):")
	report("baseline", baseTimes)
	report("aptrace", apTimes)

	// The part the numbers are about: what the analyst actually watches.
	fmt.Println("\nlive update stream (first 12 updates under APTrace):")
	shown := 0
	start := clk.Now()
	plan2, _ := aptrace.CompileScript(atk.Scripts[len(atk.Scripts)-1])
	var x2 *aptrace.Executor
	x2, err = aptrace.NewExecutor(ds.Store, plan2, aptrace.ExecOptions{
		OnUpdate: func(u aptrace.Update) {
			if shown < 12 {
				shown++
				src := ds.Store.Object(u.Event.Src())
				fmt.Printf("  t+%-8s %-40s --%s-->\n",
					u.At.Sub(start).Round(10*time.Millisecond), src.Label(), u.Event.Action)
			} else {
				x2.Stop()
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := x2.Run(alert); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  ... (analyst pauses here, adds a heuristic, resumes)")
}
