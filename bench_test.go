package aptrace_test

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, each running the corresponding experiment end-to-end over a
// shared benchmark-scale dataset. `go test -bench=. -benchmem` regenerates
// every result at reduced scale; `cmd/apbench` runs the full-scale versions.
//
//	BenchmarkSeverity          – Section IV-B1 (dependency explosion rate)
//	BenchmarkFig4              – Figure 4 (graph size vs time limit)
//	BenchmarkTable1            – Table I  (five attack cases)
//	BenchmarkTable2            – Table II (inter-update waiting time)
//	BenchmarkFig6              – Figure 6 (CPU/memory during analysis)
//	BenchmarkAblationK         – window-count ablation
//	BenchmarkAblationPolicy    – partitioning/queue-policy ablation
//	BenchmarkBacktrackEngines  – raw engine comparison on one heavy alert

import (
	"io"
	"sync"
	"testing"
	"time"

	"aptrace"
	"aptrace/internal/experiments"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

// benchSetup builds the shared benchmark dataset once.
func benchSetup(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = experiments.NewEnv(aptrace.WorkloadConfig{
			Seed: 11, Hosts: 6, Days: 4, Density: 0.8,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

func benchCfg() experiments.Config {
	return experiments.Config{Samples: 15, Cap: 20 * time.Minute, Windows: 8, Seed: 42}
}

func BenchmarkSeverity(b *testing.B) {
	env := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSeverity(env, benchCfg(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	env := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig4(env, benchCfg(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	env := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(env, benchCfg(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if !row.RootFound {
				b.Fatalf("%s: root cause not found", row.Attack)
			}
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	env := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable2(env, benchCfg(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.ReductionP99, "p99-reduction-x")
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	env := benchSetup(b)
	cfg := benchCfg()
	cfg.Cap = 5 * time.Minute
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig6(env, cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationK(b *testing.B) {
	env := benchSetup(b)
	cfg := benchCfg()
	cfg.Samples = 8
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationK(env, cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPolicy(b *testing.B) {
	env := benchSetup(b)
	cfg := benchCfg()
	cfg.Samples = 8
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationPolicy(env, cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBacktrackEngines compares the two engines head to head on one
// heavy starting point (the ShellShock alert, whose backward path crosses
// the web server's full request history).
func BenchmarkBacktrackEngines(b *testing.B) {
	env := benchSetup(b)
	var alert aptrace.Event
	for _, atk := range env.Dataset.Attacks {
		if atk.Name == "shellshock" {
			alert, _ = env.Dataset.Store.EventByID(atk.AlertID)
		}
	}
	if alert.ID == 0 {
		b.Fatal("shellshock alert missing")
	}

	b.Run("baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := aptrace.RunBaseline(env.Dataset.Store, alert, aptrace.BaselineOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("aptrace", func(b *testing.B) {
		plan, err := aptrace.CompileScript(`backward ip a[dst_ip = "203.0.113.66"] -> *`)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			x, err := aptrace.NewExecutor(env.Dataset.Store, plan, aptrace.ExecOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := x.RunUnchecked(alert); err != nil {
				b.Fatal(err)
			}
		}
	})
}
