package aptrace_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"aptrace"
)

// TestPublicAPIEndToEnd walks the whole public surface the way a downstream
// user would: generate -> detect -> script -> session -> graph -> DOT,
// plus store persistence and audit round trips.
func TestPublicAPIEndToEnd(t *testing.T) {
	clk := aptrace.NewSimulatedClock()
	ds, err := aptrace.Generate(aptrace.WorkloadConfig{
		Seed: 2, Hosts: 4, Days: 3, Density: 0.4,
	}, clk)
	if err != nil {
		t.Fatal(err)
	}

	// Detection.
	det := aptrace.NewDetector()
	alerts, err := det.Scan(ds.Store, 0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) < len(ds.Attacks) {
		t.Fatalf("detector found %d alerts for %d attacks", len(alerts), len(ds.Attacks))
	}

	// Script round trip.
	src := ds.Attacks[0].Scripts[len(ds.Attacks[0].Scripts)-1]
	script, err := aptrace.ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	if again, err := aptrace.ParseScript(aptrace.FormatScript(script)); err != nil || again == nil {
		t.Fatalf("canonical form must reparse: %v", err)
	}

	// Session analysis.
	alert, _ := ds.Store.EventByID(ds.Attacks[0].AlertID)
	sess := aptrace.NewSession(ds.Store, aptrace.ExecOptions{})
	if err := sess.Start(src, &alert); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumEdges() == 0 {
		t.Fatal("empty graph")
	}

	// DOT output.
	var dot bytes.Buffer
	if err := aptrace.WriteDOT(&dot, res.Graph, ds.Store.Object); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "digraph aptrace") {
		t.Fatal("bad DOT")
	}

	// Persistence.
	dir := t.TempDir()
	if err := ds.Store.Save(dir); err != nil {
		t.Fatal(err)
	}
	reopened, err := aptrace.OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.NumEvents() != ds.Store.NumEvents() {
		t.Fatal("persistence lost events")
	}

	// Audit export/ingest.
	var raw bytes.Buffer
	n, err := aptrace.ExportAudit(ds.Store, &raw, aptrace.FormatAuditd)
	if err != nil || n != ds.Store.NumEvents() {
		t.Fatalf("export: %d %v", n, err)
	}
	st2 := aptrace.NewStore(nil)
	ingested, err := aptrace.IngestAudit(st2, &raw)
	if err != nil || ingested.Ingested != n || ingested.Rejected != 0 {
		t.Fatalf("ingest: %+v %v", ingested, err)
	}
}

// TestBaselineVsExecutorPublicAPI confirms the comparison path works through
// the facade and that the responsiveness advantage shows up.
func TestBaselineVsExecutorPublicAPI(t *testing.T) {
	ds, err := aptrace.Generate(aptrace.WorkloadConfig{
		Seed: 4, Hosts: 5, Days: 3, Density: 0.6,
	}, aptrace.NewSimulatedClock())
	if err != nil {
		t.Fatal(err)
	}
	var alert aptrace.Event
	for _, atk := range ds.Attacks {
		if atk.Name == "shellshock" {
			alert, _ = ds.Store.EventByID(atk.AlertID)
		}
	}

	maxGap := func(times []time.Time) time.Duration {
		var max time.Duration
		for i := 1; i < len(times); i++ {
			if d := times[i].Sub(times[i-1]); d > max {
				max = d
			}
		}
		return max
	}

	var bTimes []time.Time
	if _, err := aptrace.RunBaseline(ds.Store, alert, aptrace.BaselineOptions{
		OnUpdate: func(u aptrace.Update) { bTimes = append(bTimes, u.At) },
	}); err != nil {
		t.Fatal(err)
	}

	var aTimes []time.Time
	plan, err := aptrace.CompileScript(`backward ip a[dst_ip = "203.0.113.66"] -> *`)
	if err != nil {
		t.Fatal(err)
	}
	x, err := aptrace.NewExecutor(ds.Store, plan, aptrace.ExecOptions{
		OnUpdate: func(u aptrace.Update) { aTimes = append(aTimes, u.At) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.RunUnchecked(alert); err != nil {
		t.Fatal(err)
	}

	if ga, gb := maxGap(aTimes), maxGap(bTimes); ga*2 >= gb {
		t.Fatalf("responsiveness advantage missing: aptrace max gap %v vs baseline %v", ga, gb)
	}
}

// TestExtensionsPublicAPI exercises the beyond-the-paper surface: live
// store, forward tracking, suggestions, learned detection, path display.
func TestExtensionsPublicAPI(t *testing.T) {
	dir := t.TempDir()
	live, err := aptrace.OpenLiveStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()

	// Stream a tiny exfil scenario through the audit pipeline.
	ds, err := aptrace.Generate(aptrace.WorkloadConfig{Seed: 6, Hosts: 3, Days: 2, Density: 0.3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if _, err := aptrace.ExportAudit(ds.Store, &wire, aptrace.FormatETW); err != nil {
		t.Fatal(err)
	}
	stats, err := aptrace.IngestAuditLive(live, &wire)
	if err != nil || stats.Rejected != 0 {
		t.Fatalf("live ingest: %+v %v", stats, err)
	}
	snap, err := live.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumEvents() != ds.Store.NumEvents() {
		t.Fatalf("snapshot %d != source %d", snap.NumEvents(), ds.Store.NumEvents())
	}

	// Learned detection over the snapshot.
	min, max, _ := snap.TimeRange()
	rare, err := aptrace.TrainRareChildRule(snap, min, min+(max-min)/2, 0)
	if err != nil {
		t.Fatal(err)
	}
	det := aptrace.NewDetector(append(aptrace.DefaultRules(), rare)...)
	alerts, err := det.Scan(snap, 0, 1<<62)
	if err != nil || len(alerts) == 0 {
		t.Fatalf("detector: %d alerts, %v", len(alerts), err)
	}

	// Backward run, then suggestions, then the path display.
	atk := ds.Attacks[0]
	// The snapshot re-assigned IDs; find the alert by time+shape instead.
	orig, _ := ds.Store.EventByID(atk.AlertID)
	var alert aptrace.Event
	snap.Scan(orig.Time, orig.Time+1, func(e aptrace.Event) bool {
		if e.Action == orig.Action && e.Amount == orig.Amount {
			alert = e
			return false
		}
		return true
	})
	if alert.ID == 0 {
		t.Fatal("alert not found in snapshot")
	}
	plan, err := aptrace.CompileScript(`backward ip a[dst_ip = "203.0.113.66"] -> *`)
	if err != nil {
		t.Fatal(err)
	}
	x, err := aptrace.NewExecutor(snap, plan, aptrace.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := x.RunUnchecked(alert)
	if err != nil {
		t.Fatal(err)
	}
	sugs := aptrace.SuggestHeuristics(res.Graph, snap, 5)
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	if aptrace.RenderSuggestions(sugs) == "" {
		t.Fatal("empty rendering")
	}
	// Path to some node two hops out must be reconstructible.
	var target aptrace.ObjID
	for _, n := range res.Graph.Nodes() {
		if n.Hop == 2 {
			target = n.ID
			break
		}
	}
	if path, ok := aptrace.PathFromStart(res.Graph, target, false); !ok || len(path) != 2 {
		t.Fatalf("path = %v, %v", path, ok)
	}

	// Forward tracking through the facade.
	fplan, err := aptrace.CompileScript(`forward ip a[dst_ip = "203.0.113.66"] -> * where hop <= 4`)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := aptrace.NewExecutor(snap, fplan, aptrace.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fx.RunUnchecked(alert); err != nil {
		t.Fatal(err)
	}
}
